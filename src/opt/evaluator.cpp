#include "opt/evaluator.h"

#include <algorithm>
#include <cmath>

#include "opt/sizer.h"
#include "util/check.h"

namespace minergy::opt {

CircuitEvaluator::CircuitEvaluator(const netlist::Netlist& nl,
                                   const tech::Technology& tech,
                                   const activity::ActivityProfile& profile,
                                   const EvalSettings& settings)
    : nl_(nl),
      tech_(tech),
      settings_(settings),
      dev_(tech_),
      own_wires_(tech_, nl_),
      wires_(&own_wires_),
      act_(activity::estimate_activity(nl_, profile)),
      delay_(nl_, dev_, *wires_),
      energy_(nl_, dev_, *wires_, act_, settings_.clock_frequency),
      budgeter_(nl_) {
  MINERGY_CHECK(settings_.clock_frequency > 0.0);
  MINERGY_CHECK(settings_.vts_tolerance >= 0.0 &&
                settings_.vts_tolerance < 1.0);
}

CircuitEvaluator::CircuitEvaluator(const netlist::Netlist& nl,
                                   const tech::Technology& tech,
                                   const activity::ActivityProfile& profile,
                                   const EvalSettings& settings,
                                   const interconnect::WireLoads& wires)
    : nl_(nl),
      tech_(tech),
      settings_(settings),
      dev_(tech_),
      own_wires_(tech_, nl_),
      wires_(&wires),
      act_(activity::estimate_activity(nl_, profile)),
      delay_(nl_, dev_, *wires_),
      energy_(nl_, dev_, *wires_, act_, settings_.clock_frequency),
      budgeter_(nl_) {
  MINERGY_CHECK(settings_.clock_frequency > 0.0);
  MINERGY_CHECK(settings_.vts_tolerance >= 0.0 &&
                settings_.vts_tolerance < 1.0);
}

timing::TimingReport CircuitEvaluator::sta(const CircuitState& state,
                                           double cycle_limit) const {
  std::vector<double> vts_corner(state.vts.size());
  for (std::size_t i = 0; i < state.vts.size(); ++i) {
    vts_corner[i] = delay_vts(state.vts[i]);
  }
  return timing::run_sta(delay_, state.widths, state.vdd,
                         std::span<const double>(vts_corner), cycle_limit);
}

double CircuitEvaluator::critical_delay(const CircuitState& state) const {
  return sta(state, cycle_time()).critical_delay;
}

power::EnergyBreakdown CircuitEvaluator::energy(
    const CircuitState& state) const {
  power::EnergyBreakdown total;
  for (netlist::GateId id : nl_.combinational()) {
    // Dynamic energy at nominal threshold (capacitances are Vt-independent
    // here), leakage at the low-Vt corner.
    const power::EnergyBreakdown nominal =
        energy_.gate_energy(id, state.widths, state.vdd, state.vts[id]);
    if (settings_.vts_tolerance == 0.0) {
      total += nominal;
    } else {
      const power::EnergyBreakdown leaky = energy_.gate_energy(
          id, state.widths, state.vdd, leakage_vts(state.vts[id]));
      total.dynamic_energy += nominal.dynamic_energy;
      total.static_energy += leaky.static_energy;
    }
  }
  if (settings_.include_short_circuit) {
    // Input transition times come from the gate delays of the driving
    // stage: one STA at the delay corner.
    const timing::TimingReport report = sta(state, cycle_time());
    for (netlist::GateId id : nl_.combinational()) {
      double slowest_fanin = 0.0;
      bool source_driven_only = true;
      for (netlist::GateId f : nl_.gate(id).fanins) {
        if (netlist::is_combinational(nl_.gate(f).type)) {
          slowest_fanin = std::max(slowest_fanin, report.gate_delay[f]);
          source_driven_only = false;
        }
      }
      const double tau_in = source_driven_only ? settings_.input_slew
                                               : 2.0 * slowest_fanin;
      total.short_circuit_energy += energy_.short_circuit_energy(
          id, state.widths, state.vdd, state.vts[id], tau_in);
    }
  }
  return total;
}

bool CircuitEvaluator::meets_timing(const CircuitState& state,
                                    double skew_b) const {
  // Tiny relative tolerance absorbs floating-point noise at the boundary.
  return critical_delay(state) <= skew_b * cycle_time() * (1.0 + 1e-9);
}

double CircuitEvaluator::minimum_cycle_time(double skew_b, double vts) const {
  const GateSizer sizer(delay_);
  if (vts < 0.0) vts = tech_.vts_min;
  std::vector<double> vts_corner(nl_.size(), delay_vts(vts));

  auto feasible_at = [&](double tc) {
    const timing::BudgetResult budgets =
        budgeter_.assign(tc, {.clock_skew_b = skew_b});
    const SizingResult sized = sizer.size(budgets.t_max, tech_.vdd_max,
                                          std::span<const double>(vts_corner));
    const timing::TimingReport report =
        timing::run_sta(delay_, sized.widths, tech_.vdd_max,
                        std::span<const double>(vts_corner), tc);
    return report.critical_delay <= skew_b * tc;
  };

  // Exponential bracket then bisection.
  double hi = 1e-9;
  while (!feasible_at(hi) && hi < 1.0) hi *= 2.0;
  MINERGY_CHECK_MSG(hi < 1.0, "circuit cannot meet any cycle time <= 1 s");
  double lo = hi / 2.0;
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace minergy::opt
