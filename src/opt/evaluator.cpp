#include "opt/evaluator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.h"
#include "opt/sizer.h"
#include "util/check.h"
#include "util/guard.h"
#include "util/thread_pool.h"

namespace minergy::opt {
namespace {

// Every arrival/delay must be finite and non-negative. NaN cannot be relied
// on to reach critical_delay (max-comparisons silently drop NaN operands),
// so the whole report is scanned; the isfinite sweep is trivial next to the
// per-gate transregional current evaluations STA just performed.
void check_finite_report(const netlist::Netlist& nl,
                         const timing::TimingReport& report) {
  for (netlist::GateId id : nl.combinational()) {
    const double d = report.gate_delay[id];
    const double a = report.arrival[id];
    if (!std::isfinite(d) || d < 0.0) {
      throw util::NumericError(d, "STA delay of gate '" + nl.gate(id).name +
                                      "'");
    }
    if (!std::isfinite(a) || a < 0.0) {
      throw util::NumericError(
          a, "STA arrival time at gate '" + nl.gate(id).name + "'");
    }
  }
  if (!std::isfinite(report.critical_delay) || report.critical_delay < 0.0) {
    throw util::NumericError(report.critical_delay, "STA critical delay");
  }
}

// Rejects a corrupt technology before any derived model (device, wires,
// delay, energy) is built from it.
const tech::Technology& validated(const tech::Technology& tech) {
  tech.validate();
  return tech;
}

// Same idea for the settings: members like the EnergyModel consume the
// clock frequency during construction, so a bad value must be rejected in
// the init list, before any of them is built.
const EvalSettings& validated(const EvalSettings& settings) {
  if (!std::isfinite(settings.clock_frequency) ||
      settings.clock_frequency <= 0.0) {
    throw util::NumericError(settings.clock_frequency, "clock frequency");
  }
  if (!std::isfinite(settings.vts_tolerance) ||
      settings.vts_tolerance < 0.0 || settings.vts_tolerance >= 1.0) {
    throw util::NumericError(settings.vts_tolerance,
                             "Vts process-variation tolerance");
  }
  if (!std::isfinite(settings.input_slew) || settings.input_slew < 0.0) {
    throw util::NumericError(settings.input_slew, "primary-input slew");
  }
  return settings;
}

}  // namespace

CircuitEvaluator::CircuitEvaluator(const netlist::Netlist& nl,
                                   const tech::Technology& tech,
                                   const activity::ActivityProfile& profile,
                                   const EvalSettings& settings)
    : nl_(nl),
      tech_(validated(tech)),
      settings_(validated(settings)),
      dev_(tech_),
      own_wires_(tech_, nl_),
      wires_(&own_wires_),
      act_(activity::estimate_activity(nl_, profile)),
      delay_(nl_, dev_, *wires_),
      energy_(nl_, dev_, *wires_, act_, settings_.clock_frequency),
      budgeter_(nl_) {
  validate_inputs();
}

CircuitEvaluator::CircuitEvaluator(const netlist::Netlist& nl,
                                   const tech::Technology& tech,
                                   const activity::ActivityProfile& profile,
                                   const EvalSettings& settings,
                                   const interconnect::WireLoads& wires)
    : nl_(nl),
      tech_(validated(tech)),
      settings_(validated(settings)),
      dev_(tech_),
      own_wires_(tech_, nl_),
      wires_(&wires),
      act_(activity::estimate_activity(nl_, profile)),
      delay_(nl_, dev_, *wires_),
      energy_(nl_, dev_, *wires_, act_, settings_.clock_frequency),
      budgeter_(nl_) {
  validate_inputs();
}

void CircuitEvaluator::validate_inputs() const {
  // Settings were vetted by validated() in the init list; the netlist is
  // the one remaining precondition.
  MINERGY_CHECK_MSG(nl_.finalized(),
                    "netlist must be finalized before evaluation");
}

timing::TimingReport CircuitEvaluator::sta(const CircuitState& state,
                                           double cycle_limit) const {
  static obs::Counter& c_calls = obs::counter("opt.eval.sta_calls");
  c_calls.add();
  const bool cached = eval_cache_active();
  EvalKey key;
  if (cached) {
    // cycle_limit is folded into the key: it changes slacks, not arrivals.
    key = EvalKey::of(state.vdd, state.vts, state.widths, cycle_limit);
    timing::TimingReport hit;
    if (sta_cache_.lookup(key, &hit)) return hit;
  }
  std::vector<double> vts_corner(state.vts.size());
  for (std::size_t i = 0; i < state.vts.size(); ++i) {
    vts_corner[i] = delay_vts(state.vts[i]);
  }
  timing::TimingReport report =
      timing::run_sta(delay_, state.widths, state.vdd,
                      std::span<const double>(vts_corner), cycle_limit);
  check_finite_report(nl_, report);
  if (cached) sta_cache_.insert(key, report);
  return report;
}

double CircuitEvaluator::critical_delay(const CircuitState& state) const {
  return sta(state, cycle_time()).critical_delay;
}

power::EnergyBreakdown CircuitEvaluator::energy(
    const CircuitState& state) const {
  static obs::Counter& c_calls = obs::counter("opt.eval.energy_calls");
  static obs::Histogram& h_micros = obs::histogram("opt.eval.energy_micros");
  c_calls.add();
  const obs::ScopedTimer timer(h_micros);
  const bool cached = eval_cache_active();
  EvalKey key;
  if (cached) {
    key = EvalKey::of(state.vdd, state.vts, state.widths, 0.0);
    power::EnergyBreakdown hit;
    if (energy_cache_.lookup(key, &hit)) return hit;
  }
  // Per-gate terms are independent, so they fan across the pool into slots;
  // the reduction then runs serially in topological (= the old serial loop's)
  // order, keeping the floating-point sum bit-identical at any thread count.
  const auto& topo = nl_.combinational();
  util::ThreadPool& pool = util::global_pool();
  std::vector<power::EnergyBreakdown> per_gate(topo.size());
  pool.parallel_for(topo.size(), [&](std::size_t i) {
    const netlist::GateId id = topo[i];
    // Dynamic energy at nominal threshold (capacitances are Vt-independent
    // here), leakage at the low-Vt corner.
    const power::EnergyBreakdown nominal =
        energy_.gate_energy(id, state.widths, state.vdd, state.vts[id]);
    if (settings_.vts_tolerance == 0.0) {
      per_gate[i] = nominal;
    } else {
      const power::EnergyBreakdown leaky = energy_.gate_energy(
          id, state.widths, state.vdd, leakage_vts(state.vts[id]));
      per_gate[i].dynamic_energy = nominal.dynamic_energy;
      per_gate[i].static_energy = leaky.static_energy;
    }
  });
  power::EnergyBreakdown total;
  for (const power::EnergyBreakdown& e : per_gate) total += e;
  if (settings_.include_short_circuit) {
    // Input transition times come from the gate delays of the driving
    // stage: one STA at the delay corner.
    const timing::TimingReport report = sta(state, cycle_time());
    std::vector<double> sc(topo.size(), 0.0);
    pool.parallel_for(topo.size(), [&](std::size_t i) {
      const netlist::GateId id = topo[i];
      double slowest_fanin = 0.0;
      bool source_driven_only = true;
      for (netlist::GateId f : nl_.gate(id).fanins) {
        if (netlist::is_combinational(nl_.gate(f).type)) {
          slowest_fanin = std::max(slowest_fanin, report.gate_delay[f]);
          source_driven_only = false;
        }
      }
      const double tau_in = source_driven_only ? settings_.input_slew
                                               : 2.0 * slowest_fanin;
      sc[i] = energy_.short_circuit_energy(id, state.widths, state.vdd,
                                           state.vts[id], tau_in);
    });
    for (double e : sc) total.short_circuit_energy += e;
  }
  // Boundary guard: a single corrupt per-gate term poisons the sum, so on a
  // non-finite total re-walk the gates to name the culprit.
  if (!std::isfinite(total.total())) {
    for (netlist::GateId id : nl_.combinational()) {
      const power::EnergyBreakdown e =
          energy_.gate_energy(id, state.widths, state.vdd, state.vts[id]);
      if (!std::isfinite(e.total())) {
        throw util::NumericError(
            e.total(), "energy of gate '" + nl_.gate(id).name + "'");
      }
    }
    throw util::NumericError(total.total(), "total energy per cycle");
  }
  if (cached) energy_cache_.insert(key, total);
  return total;
}

bool CircuitEvaluator::meets_timing(const CircuitState& state,
                                    double skew_b) const {
  // Tiny relative tolerance absorbs floating-point noise at the boundary.
  return critical_delay(state) <= skew_b * cycle_time() * (1.0 + 1e-9);
}

double CircuitEvaluator::minimum_cycle_time(double skew_b, double vts) const {
  const GateSizer sizer(delay_);
  if (vts < 0.0) vts = tech_.vts_min;
  std::vector<double> vts_corner(nl_.size(), delay_vts(vts));

  auto feasible_at = [&](double tc) {
    const timing::BudgetResult budgets =
        budgeter_.assign(tc, {.clock_skew_b = skew_b});
    const SizingResult sized = sizer.size(budgets.t_max, tech_.vdd_max,
                                          std::span<const double>(vts_corner));
    const timing::TimingReport report =
        timing::run_sta(delay_, sized.widths, tech_.vdd_max,
                        std::span<const double>(vts_corner), tc);
    return report.critical_delay <= skew_b * tc;
  };

  // Exponential bracket then bisection.
  double hi = 1e-9;
  while (!feasible_at(hi) && hi < 1.0) hi *= 2.0;
  MINERGY_CHECK_MSG(hi < 1.0, "circuit cannot meet any cycle time <= 1 s");
  double lo = hi / 2.0;
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

util::InfeasibleError diagnose_infeasibility(const CircuitEvaluator& eval,
                                             double skew_b) {
  const netlist::Netlist& nl = eval.netlist();
  const tech::Technology& tech = eval.technology();
  const double tc = eval.cycle_time();
  const double limit = skew_b * tc;

  // Max-drive probe: strongest corner the technology offers, budget-driven
  // sizing against the requested cycle time.
  const std::vector<double> vts_corner(nl.size(), eval.delay_vts(tech.vts_min));
  const timing::BudgetResult budgets =
      eval.budgeter().assign(tc, {.clock_skew_b = skew_b});
  const GateSizer sizer(eval.delay_calculator());
  const SizingResult sized = sizer.size(budgets.t_max, tech.vdd_max,
                                        std::span<const double>(vts_corner));
  const timing::TimingReport report =
      timing::run_sta(eval.delay_calculator(), sized.widths, tech.vdd_max,
                      std::span<const double>(vts_corner), tc);

  const std::string endpoint =
      report.critical_path.empty()
          ? std::string("<none>")
          : nl.gate(report.critical_path.back()).name;
  std::ostringstream msg;
  msg << "cycle-time constraint infeasible for '" << nl.name()
      << "': requested T_c = " << tc * 1e9 << " ns (delay limit b*T_c = "
      << limit * 1e9 << " ns), but the best achievable critical-path delay "
      << "at maximum drive (Vdd = " << tech.vdd_max << " V, Vts = "
      << tech.vts_min << " V) is " << report.critical_delay * 1e9
      << " ns; limiting path ends at gate '" << endpoint
      << "'. Relax the clock or restructure that cone of logic.";
  return util::InfeasibleError(msg.str(), limit, report.critical_delay,
                               endpoint);
}

}  // namespace minergy::opt
