#include "place/placement.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minergy::place {

Placement::Placement(const netlist::Netlist& nl) : nl_(nl) {
  MINERGY_CHECK(nl.finalized());
  const double cells = static_cast<double>(nl.size()) * 1.2;  // 20% whitespace
  width_ = std::max(2, static_cast<int>(std::ceil(std::sqrt(cells))));
  height_ = width_;
  MINERGY_CHECK(static_cast<std::size_t>(width_) *
                    static_cast<std::size_t>(height_) >=
                nl.size());
  // Row-major default placement.
  cells_.resize(nl.size());
  for (std::size_t i = 0; i < nl.size(); ++i) {
    cells_[i] = {static_cast<int>(i) % width_, static_cast<int>(i) / width_};
  }
}

void Placement::set_location(netlist::GateId id, Cell c) {
  MINERGY_CHECK(id < cells_.size());
  MINERGY_CHECK(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_);
  cells_[id] = c;
}

void Placement::swap(netlist::GateId a, netlist::GateId b) {
  MINERGY_CHECK(a < cells_.size() && b < cells_.size());
  std::swap(cells_[a], cells_[b]);
}

double Placement::net_hpwl(netlist::GateId driver) const {
  const netlist::Gate& g = nl_.gate(driver);
  if (g.fanouts.empty()) return 0.0;
  int min_x = cells_[driver].x, max_x = min_x;
  int min_y = cells_[driver].y, max_y = min_y;
  for (netlist::GateId sink : g.fanouts) {
    min_x = std::min(min_x, cells_[sink].x);
    max_x = std::max(max_x, cells_[sink].x);
    min_y = std::min(min_y, cells_[sink].y);
    max_y = std::max(max_y, cells_[sink].y);
  }
  return static_cast<double>(max_x - min_x) +
         static_cast<double>(max_y - min_y);
}

double Placement::total_hpwl() const {
  double total = 0.0;
  for (const netlist::Gate& g : nl_.gates()) total += net_hpwl(g.id);
  return total;
}

bool Placement::legal() const {
  std::vector<char> occupied(
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_),
      0);
  for (const Cell& c : cells_) {
    if (c.x < 0 || c.x >= width_ || c.y < 0 || c.y >= height_) return false;
    char& slot =
        occupied[static_cast<std::size_t>(c.y) *
                     static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(c.x)];
    if (slot) return false;
    slot = 1;
  }
  return true;
}

AnnealingPlacer::AnnealingPlacer(PlacerOptions options) : opts_(options) {
  MINERGY_CHECK(opts_.moves_per_node >= 1);
  MINERGY_CHECK(opts_.final_temp_ratio > 0.0 && opts_.final_temp_ratio < 1.0);
}

Placement AnnealingPlacer::place(const netlist::Netlist& nl) const {
  util::Rng rng(opts_.seed);
  Placement p(nl);

  // Random initial placement: Fisher–Yates over the row-major locations.
  for (std::size_t i = 0; i + 1 < nl.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_index(nl.size() - i));
    p.swap(static_cast<netlist::GateId>(i), static_cast<netlist::GateId>(j));
  }

  // Nets touched by moving a node: the node's own net plus its fanins'.
  auto incident_cost = [&](netlist::GateId id) {
    double cost = p.net_hpwl(id);
    for (netlist::GateId f : nl.gate(id).fanins) cost += p.net_hpwl(f);
    return cost;
  };
  auto pair_cost = [&](netlist::GateId a, netlist::GateId b) {
    // Avoid double counting shared nets by summing over the union lazily;
    // double counting is harmless for a *delta* as long as before/after use
    // the same set.
    return incident_cost(a) + incident_cost(b);
  };

  const std::size_t n = nl.size();
  const long total_moves =
      static_cast<long>(opts_.moves_per_node) * static_cast<long>(n);
  double temperature =
      opts_.initial_temp_factor *
      std::max(1.0, p.total_hpwl() / std::max<double>(1.0, static_cast<double>(n)));
  // Geometric schedule spanning the whole budget: T_end = ratio * T0.
  const double cooling =
      std::exp(std::log(opts_.final_temp_ratio) /
               static_cast<double>(total_moves));

  for (long move = 0; move < total_moves; ++move) {
    const auto a = static_cast<netlist::GateId>(rng.uniform_index(n));
    auto b = static_cast<netlist::GateId>(rng.uniform_index(n));
    if (a == b) continue;
    const double before = pair_cost(a, b);
    p.swap(a, b);
    const double delta = pair_cost(a, b) - before;
    if (delta > 0.0 &&
        !rng.bernoulli(std::exp(-delta / std::max(temperature, 1e-12)))) {
      p.swap(a, b);  // reject
    }
    temperature *= cooling;
  }
  return p;
}

PlacedWireModel::PlacedWireModel(const tech::Technology& tech,
                                 const Placement& placement)
    : placement_(placement),
      pitch_(tech.gate_pitch),
      cap_per_len_(tech.wire_cap_per_len),
      res_per_len_(tech.wire_res_per_len),
      inv_velocity_(1.0 / tech.flight_velocity),
      min_length_(tech.gate_pitch) {}

double PlacedWireModel::net_length(netlist::GateId driver) const {
  return std::max(min_length_, placement_.net_hpwl(driver) * pitch_);
}

double PlacedWireModel::routed_length(netlist::GateId driver) const {
  // HPWL already spans all sinks; a Steiner tree routes within ~1.1x of it
  // for the fanouts seen in random logic.
  return 1.1 * net_length(driver);
}

double PlacedWireModel::net_cap(netlist::GateId driver) const {
  return routed_length(driver) * cap_per_len_;
}

double PlacedWireModel::net_res(netlist::GateId driver) const {
  return net_length(driver) * res_per_len_;
}

double PlacedWireModel::flight_time(netlist::GateId driver) const {
  return net_length(driver) * inv_velocity_;
}

}  // namespace minergy::place
