// Standard-cell placement on a uniform grid.
//
// The paper estimates net lengths a priori from Rent's rule ("as dictated
// by the physical and architectural characteristics of a random logic
// network"); this module provides the ground truth to validate that
// estimate against: a simulated-annealing placer minimizing total
// half-perimeter wirelength (HPWL), plus a WireLoads implementation that
// derives every net's electrical load from its placed HPWL, so the whole
// optimization flow can run on *placed* instead of *statistical* wires.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "interconnect/wire_model.h"
#include "netlist/netlist.h"
#include "tech/technology.h"
#include "util/rng.h"

namespace minergy::place {

struct Cell {
  int x = 0;
  int y = 0;
};

class Placement {
 public:
  // An empty placement of all nodes (sources and gates) on a square grid
  // with ~20% whitespace.
  explicit Placement(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return nl_; }
  int grid_width() const { return width_; }
  int grid_height() const { return height_; }

  Cell location(netlist::GateId id) const { return cells_[id]; }
  void set_location(netlist::GateId id, Cell c);
  void swap(netlist::GateId a, netlist::GateId b);

  // Half-perimeter wirelength of the net driven by `driver`, in grid units
  // (0 for nets with no sinks).
  double net_hpwl(netlist::GateId driver) const;
  // Sum of net_hpwl over all driven nets.
  double total_hpwl() const;

  // True iff all nodes sit on distinct in-range grid cells.
  bool legal() const;

 private:
  const netlist::Netlist& nl_;
  int width_, height_;
  std::vector<Cell> cells_;  // per gate id
};

struct PlacerOptions {
  std::uint64_t seed = 1;
  int moves_per_node = 600;          // annealing budget
  double initial_temp_factor = 0.5;  // T0 = factor * mean net HPWL
  double final_temp_ratio = 1e-4;    // geometric schedule endpoint T_end/T0
};

class AnnealingPlacer {
 public:
  explicit AnnealingPlacer(PlacerOptions options = {});

  // Random initial placement refined by swap-based simulated annealing.
  Placement place(const netlist::Netlist& nl) const;

 private:
  PlacerOptions opts_;
};

// Per-net loads computed from a placement: trunk length = HPWL * pitch.
class PlacedWireModel final : public interconnect::WireLoads {
 public:
  PlacedWireModel(const tech::Technology& tech, const Placement& placement);

  double net_length(netlist::GateId driver) const override;
  double routed_length(netlist::GateId driver) const override;
  double net_cap(netlist::GateId driver) const override;
  double net_res(netlist::GateId driver) const override;
  double flight_time(netlist::GateId driver) const override;

 private:
  const Placement& placement_;
  double pitch_;
  double cap_per_len_, res_per_len_, inv_velocity_;
  double min_length_;  // a placed net never has less than one pitch of wire
};

}  // namespace minergy::place
