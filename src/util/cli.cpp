#include "util/cli.h"

#include <cstdlib>
#include <stdexcept>

#include "util/strings.h"

namespace minergy::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (starts_with(arg, "--")) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double Cli::get(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

int Cli::get(const std::string& name, int fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
}

bool Cli::get(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string v = to_lower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("bad boolean flag --" + name + "=" + it->second);
}

}  // namespace minergy::util
