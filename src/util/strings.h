// Small string utilities shared by the parsers and reporters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace minergy::util {

// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

// Split on arbitrary whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

// ASCII case conversion.
std::string to_upper(std::string_view s);
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

// Engineering-notation formatting: 1.23e-12 -> "1.23p", with unit suffix,
// e.g. format_eng(3.2e-9, "s") == "3.200ns".
std::string format_eng(double value, std::string_view unit, int precision = 3);

// Fixed scientific formatting used in the paper-style tables ("1.23e-12").
std::string format_sci(double value, int precision = 3);

}  // namespace minergy::util
