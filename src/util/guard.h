// Numeric guards and runaway-search watchdogs.
//
// The transregional delay model is numerically treacherous near Vdd ≈ Vts:
// subthreshold currents are exponentially small, every delay divides by a
// drive current, and energies scale with Vdd^2 over many orders of
// magnitude. A degenerate technology file or pathological netlist can push
// any of those past double precision, and a NaN that enters STA silently
// propagates into the "optimal" energy result. These helpers convert such
// silent corruption into typed, contextual errors at the module boundaries
// (see docs/ROBUSTNESS.md for the full taxonomy), and bound every nested
// search with a wall-clock/evaluation-count budget so ill-conditioned cost
// surfaces stall a probe, not the process.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace minergy::util {

// Thrown when a model or analysis produces a non-finite (or otherwise
// non-physical) value. `context` names the quantity and, when known, the
// gate or net it was computed for, so the failure is actionable.
class NumericError : public std::runtime_error {
 public:
  NumericError(double value, const std::string& context);

  double value() const { return value_; }
  const std::string& context() const { return context_; }

 private:
  double value_;
  std::string context_;
};

// Returns `value` unchanged when it is finite; throws NumericError otherwise.
double finite_or_throw(double value, const std::string& context);

// Same, additionally requiring value >= 0 (delays, energies, capacitances).
double finite_nonneg_or_throw(double value, const std::string& context);

// Resource budget for one optimization run. Default-constructed budgets are
// unlimited, so existing call sites pay nothing for the plumbing.
struct WatchdogBudget {
  // Wall-clock limit in seconds; infinity = unlimited.
  double wall_seconds = std::numeric_limits<double>::infinity();
  // Circuit-evaluation (size + STA + energy pass) limit; <= 0 = unlimited.
  std::int64_t max_evaluations = 0;

  bool unlimited() const {
    return wall_seconds == std::numeric_limits<double>::infinity() &&
           max_evaluations <= 0;
  }
};

// Deadline + evaluation-count watchdog. Optimizers call note_evaluation()
// once per circuit evaluation and poll expired() between probes; an expired
// watchdog means "stop searching and return the best state seen so far,
// flagged truncated" — it is a budget, not an error.
class Watchdog {
 public:
  // Unlimited watchdog: never expires.
  Watchdog() : Watchdog(WatchdogBudget{}) {}
  // The wall clock starts at construction; restart() rewinds it.
  explicit Watchdog(const WatchdogBudget& budget);

  void restart();

  // Counts `n` circuit evaluations; returns expired() for convenience.
  bool note_evaluation(std::int64_t n = 1);

  bool expired() const;
  // nullptr while not expired; otherwise a stable description of which
  // budget ran out ("evaluation budget" / "wall-clock deadline").
  const char* expiry_reason() const;

  std::int64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  double elapsed_seconds() const;
  const WatchdogBudget& budget() const { return budget_; }

 private:
  WatchdogBudget budget_;
  std::chrono::steady_clock::time_point start_;
  // Atomic so concurrent annealing chains can share one watchdog; the count
  // is a budget, not a result, so relaxed ordering is enough.
  std::atomic<std::int64_t> evaluations_{0};
};

}  // namespace minergy::util
