// Error-reporting primitives used throughout minergy.
//
// We follow the C++ Core Guidelines: exceptions for errors that a caller may
// want to handle (parse failures, infeasible constraints), and hard checks
// for programming-contract violations.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace minergy::util {

// Thrown when an input file or textual description cannot be parsed.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, const std::string& file, int line_no)
      : std::runtime_error(file + ":" + std::to_string(line_no) + ": " + what),
        file_(file),
        line_no_(line_no) {}

  const std::string& file() const { return file_; }
  int line_no() const { return line_no_; }

 private:
  std::string file_;
  int line_no_;
};

// Thrown when an optimization problem has no feasible solution within the
// technology's variable ranges (e.g. the requested cycle time cannot be met
// even at maximum drive). When the thrower can measure it, the error also
// carries the requested delay limit, the best critical-path delay achievable
// at maximum drive, and the endpoint gate of the limiting path, so users can
// act on the infeasibility (relax T_c, restructure the limiting cone)
// instead of guessing.
class InfeasibleError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;

  InfeasibleError(const std::string& what, double requested_limit,
                  double best_achievable, std::string limiting_gate)
      : std::runtime_error(what),
        requested_limit_(requested_limit),
        best_achievable_(best_achievable),
        limiting_gate_(std::move(limiting_gate)) {}

  // Requested delay limit (b * T_c, seconds); 0 when not measured.
  double requested_limit() const { return requested_limit_; }
  // Best achievable critical-path delay at maximum drive (seconds).
  double best_achievable() const { return best_achievable_; }
  // Endpoint gate of the limiting path; empty when not measured.
  const std::string& limiting_gate() const { return limiting_gate_; }

 private:
  double requested_limit_ = 0.0;
  double best_achievable_ = 0.0;
  std::string limiting_gate_;
};

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "MINERGY_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace minergy::util

// Contract check: condition must hold or the program state is corrupt.
#define MINERGY_CHECK(cond)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::minergy::util::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define MINERGY_CHECK_MSG(cond, msg)                                        \
  do {                                                                      \
    if (!(cond))                                                            \
      ::minergy::util::throw_check_failure(#cond, __FILE__, __LINE__, msg); \
  } while (false)
