// Error-reporting primitives used throughout minergy.
//
// We follow the C++ Core Guidelines: exceptions for errors that a caller may
// want to handle (parse failures, infeasible constraints), and hard checks
// for programming-contract violations.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace minergy::util {

// Thrown when an input file or textual description cannot be parsed.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, const std::string& file, int line_no)
      : std::runtime_error(file + ":" + std::to_string(line_no) + ": " + what),
        file_(file),
        line_no_(line_no) {}

  const std::string& file() const { return file_; }
  int line_no() const { return line_no_; }

 private:
  std::string file_;
  int line_no_;
};

// Thrown when an optimization problem has no feasible solution within the
// technology's variable ranges (e.g. the requested cycle time cannot be met
// even at maximum drive).
class InfeasibleError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "MINERGY_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace minergy::util

// Contract check: condition must hold or the program state is corrupt.
#define MINERGY_CHECK(cond)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::minergy::util::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define MINERGY_CHECK_MSG(cond, msg)                                        \
  do {                                                                      \
    if (!(cond))                                                            \
      ::minergy::util::throw_check_failure(#cond, __FILE__, __LINE__, msg); \
  } while (false)
