#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace minergy::util {

// --- JsonWriter -------------------------------------------------------------

JsonWriter::JsonWriter(int indent) : indent_(indent) {}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::comma_and_newline() {
  // A value directly after a key continues the "key: value" pair; anything
  // else inside a container is a new element.
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  comma_and_newline();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MINERGY_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_and_newline();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MINERGY_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  MINERGY_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  MINERGY_CHECK(!after_key_);
  comma_and_newline();
  out_ += json_escape(k);
  out_ += indent_ > 0 ? ": " : ":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_and_newline();
  out_ += json_escape(s);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_and_newline();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma_and_newline();
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  comma_and_newline();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t i) {
  comma_and_newline();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_and_newline();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  MINERGY_CHECK_MSG(stack_.empty(), "unbalanced JSON writer");
  return out_;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// --- JsonValue parser -------------------------------------------------------

class JsonParser {
 public:
  JsonParser(std::string_view text, const std::string& source)
      : text_(text), source_(source) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    // Report the 1-based line for editor-friendly context.
    int line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError(what + " (offset " + std::to_string(pos_) + ")", source_,
                     line);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type_ = JsonValue::Type::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      v.members_[std::move(k)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // nothing in the telemetry layer emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
      any = true;
    }
    if (!any) fail("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = d;
    return v;
  }

  std::string_view text_;
  std::string source_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text,
                           const std::string& source_name) {
  return JsonParser(text, source_name).parse_document();
}

bool JsonValue::as_bool() const {
  MINERGY_CHECK(type_ == Type::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  MINERGY_CHECK(type_ == Type::kNumber);
  return number_;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& JsonValue::as_string() const {
  MINERGY_CHECK(type_ == Type::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  MINERGY_CHECK(type_ == Type::kArray);
  return items_;
}

const std::map<std::string, JsonValue>& JsonValue::members() const {
  MINERGY_CHECK(type_ == Type::kObject);
  return members_;
}

bool JsonValue::has(const std::string& k) const {
  return type_ == Type::kObject && members_.count(k) > 0;
}

const JsonValue& JsonValue::at(const std::string& k) const {
  MINERGY_CHECK(type_ == Type::kObject);
  const auto it = members_.find(k);
  MINERGY_CHECK_MSG(it != members_.end(), "missing JSON key: " + k);
  return it->second;
}

double JsonValue::get_number(const std::string& k, double fallback) const {
  return has(k) ? at(k).as_number() : fallback;
}

bool JsonValue::get_bool(const std::string& k, bool fallback) const {
  return has(k) ? at(k).as_bool() : fallback;
}

std::string JsonValue::get_string(const std::string& k,
                                  std::string fallback) const {
  return has(k) ? at(k).as_string() : fallback;
}

void emit(JsonWriter& w, const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      w.null();
      return;
    case JsonValue::Type::kBool:
      w.value(v.as_bool());
      return;
    case JsonValue::Type::kNumber:
      w.value(v.as_number());
      return;
    case JsonValue::Type::kString:
      w.value(v.as_string());
      return;
    case JsonValue::Type::kArray:
      w.begin_array();
      for (const JsonValue& item : v.items()) emit(w, item);
      w.end_array();
      return;
    case JsonValue::Type::kObject:
      w.begin_object();
      for (const auto& [k, member] : v.members()) {
        w.key(k);
        emit(w, member);
      }
      w.end_object();
      return;
  }
}

}  // namespace minergy::util
