#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minergy::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  MINERGY_CHECK(hi > lo);
  MINERGY_CHECK(bins > 0);
}

void Histogram::add(double x, double weight) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  MINERGY_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ <= 0.0) return lo_;
  const double target = q * total_;
  double acc = 0.0;
  for (std::size_t i = 0; i < bins(); ++i) {
    const double next = acc + counts_[i];
    if (next >= target) {
      // Interpolate inside the bin.
      const double frac =
          counts_[i] > 0.0 ? (target - acc) / counts_[i] : 0.0;
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    acc = next;
  }
  return hi_;
}

double quantile(std::vector<double> values, double q) {
  MINERGY_CHECK(!values.empty());
  MINERGY_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace minergy::util
