#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace minergy::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the full 256-bit state from SplitMix64, per the xoshiro authors'
  // recommendation; guards against the all-zero state.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MINERGY_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  MINERGY_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ULL - ~0ULL % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::split() { return Rng(next_u64()); }

RngState Rng::state() const {
  RngState s;
  for (int i = 0; i < 4; ++i) s.words[static_cast<std::size_t>(i)] = state_[i];
  s.have_spare_normal = have_spare_normal_;
  s.spare_normal = spare_normal_;
  return s;
}

void Rng::restore(const RngState& s) {
  for (int i = 0; i < 4; ++i) state_[i] = s.words[static_cast<std::size_t>(i)];
  have_spare_normal_ = s.have_spare_normal;
  spare_normal_ = s.spare_normal;
}

std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double hash_unit(std::uint64_t x) {
  return static_cast<double>(hash_mix(x) >> 11) * 0x1.0p-53;
}

}  // namespace minergy::util
