// Minimal JSON emitter and parser.
//
// The observability layer serializes traces, metric snapshots and run
// reports as JSON; this keeps the repo dependency-free. JsonWriter is a
// streaming emitter that manages commas/indentation and escapes strings;
// JsonValue is a small recursive-descent parser used by round-trip readers
// and the trace/report validation tooling. Neither aims to be a general
// JSON library: numbers are doubles (plus an exact int64 emit path), and
// inputs larger than memory are out of scope.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace minergy::util {

// Streaming JSON emitter. Structural calls must balance; keys are only
// legal directly inside an object. Violations are contract errors
// (MINERGY_CHECK), not exceptions, since the call sequence is fixed at
// compile time by the caller.
class JsonWriter {
 public:
  // indent = 0 emits compact one-line JSON; indent > 0 pretty-prints.
  explicit JsonWriter(int indent = 0);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double d);  // non-finite values emit null
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(std::size_t i);
  JsonWriter& null();

  // Convenience: key + scalar value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  // The finished document. Valid once every begin_* has been closed.
  const std::string& str() const;

 private:
  enum class Frame { kObject, kArray };
  void comma_and_newline();
  void newline_indent();

  int indent_;
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool after_key_ = false;
};

// Escapes `s` as a JSON string literal including the surrounding quotes.
std::string json_escape(std::string_view s);

// Parsed JSON document node.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses one JSON document (throws util::ParseError with offset context
  // on malformed input; trailing non-whitespace is an error).
  static JsonValue parse(std::string_view text,
                         const std::string& source_name = "<json>");

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; wrong-type access is a contract error.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  // number truncated toward zero
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;                 // array
  const std::map<std::string, JsonValue>& members() const;     // object

  // Object lookup. at() is a contract error on a missing key; get_* return
  // the fallback when the key is absent (but still reject wrong types).
  bool has(const std::string& k) const;
  const JsonValue& at(const std::string& k) const;
  double get_number(const std::string& k, double fallback) const;
  bool get_bool(const std::string& k, bool fallback) const;
  std::string get_string(const std::string& k, std::string fallback) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;

  friend class JsonParser;
};

// Re-emits a parsed value through a writer (as the current value position:
// either directly after key() or as an array element). Lets tooling embed a
// parsed sub-document — e.g. a worker's result JSON inside a batch report —
// without hand-splicing text.
void emit(JsonWriter& w, const JsonValue& v);

}  // namespace minergy::util
