// Minimal command-line flag parser for the examples, tools and benches.
//
// Accepted forms: --name=value and --flag (boolean true). Values always use
// '=' so that "--flag positional" stays unambiguous. Positional arguments
// are collected in order.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace minergy::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  double get(const std::string& name, double fallback) const;
  int get(const std::string& name, int fallback) const;
  bool get(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace minergy::util
