// Physical constants and unit multipliers (SI throughout).
#pragma once

namespace minergy::util {

// Boltzmann constant (J/K).
inline constexpr double kBoltzmann = 1.380649e-23;
// Elementary charge (C).
inline constexpr double kElectronCharge = 1.602176634e-19;
// Vacuum permittivity (F/m).
inline constexpr double kEpsilon0 = 8.8541878128e-12;
// Relative permittivity of SiO2.
inline constexpr double kEpsSiO2 = 3.9;
// Speed of light (m/s).
inline constexpr double kSpeedOfLight = 2.99792458e8;

// Thermal voltage kT/q at temperature T (K).
inline constexpr double thermal_voltage(double temperature_k) {
  return kBoltzmann * temperature_k / kElectronCharge;
}

// Unit multipliers.
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

}  // namespace minergy::util
