// Streaming statistics and simple histograms.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace minergy::util {

// Welford online accumulator: mean / variance / extrema in one pass.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
// boundary bins so no sample is lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

  // Inverse CDF: smallest x with CDF(x) >= q, q in [0, 1].
  double quantile(double q) const;

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

// Exact quantile of a copied sample set (linear interpolation).
double quantile(std::vector<double> values, double q);

}  // namespace minergy::util
