// Monotonic clock shim shared by the observability layer.
//
// All timestamps in traces and perf records are microseconds since a
// process-stable epoch (the first call in the process), so events from
// different modules line up on one axis and the numbers stay small enough
// for exact double arithmetic over any realistic run length.
#pragma once

#include <chrono>

namespace minergy::util {

// Microseconds since the process-stable epoch. Monotonic (steady_clock).
inline double monotonic_micros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

inline double monotonic_seconds() { return monotonic_micros() * 1e-6; }

}  // namespace minergy::util
