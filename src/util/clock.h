// Monotonic clock shim shared by the observability layer, plus the
// injectable Clock used by the service plane for every duration decision.
//
// All timestamps in traces and perf records are microseconds since a
// process-stable epoch (the first call in the process), so events from
// different modules line up on one axis and the numbers stay small enough
// for exact double arithmetic over any realistic run length.
//
// The service plane (lease expiry, retry not_before, shed windows, the
// overload-policy staleness horizon) must never misbehave when the wall
// clock steps backwards (NTP slew, VM resume, operator `date -s`). Those
// call sites therefore take their "now" from Clock::unix_monotone(): a
// unix-epoch timestamp whose LEVEL comes from the wall clock but whose
// FORWARD PROGRESS is guaranteed by CLOCK_MONOTONIC — it is clamped to be
// non-decreasing within the process, so a backward wall jump can never
// produce a negative backoff, a premature lease steal, or a shed window
// that re-opens. Tests substitute VirtualClock and jump the wall component
// by ±1 h to prove it.
#pragma once

#include <chrono>

namespace minergy::util {

// Microseconds since the process-stable epoch. Monotonic (steady_clock).
inline double monotonic_micros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

inline double monotonic_seconds() { return monotonic_micros() * 1e-6; }

// Injectable time source. The two virtual primitives are the raw clocks;
// unix_monotone() composes them into the timestamp the service plane uses.
class Clock {
 public:
  Clock() = default;
  virtual ~Clock() = default;
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  // Seconds on a monotonic axis (CLOCK_MONOTONIC). Only differences are
  // meaningful; the epoch is unspecified.
  virtual double monotonic() const;

  // Raw wall clock, seconds since the unix epoch. May jump either way.
  virtual double wall_unix() const;

  // Unix-epoch seconds that never decrease within this process: the wall
  // clock, floor-clamped so that between two calls it advances by at least
  // the CLOCK_MONOTONIC elapsed time. Forward wall jumps pass through
  // (timestamps stay meaningful to external observers); backward jumps are
  // absorbed. Thread-safe.
  double unix_monotone();

  // The process-wide real clock.
  static Clock& system();

 private:
  // Floor state for unix_monotone(): the last returned value and the
  // monotonic reading at which it was returned. Guarded by a mutex in the
  // implementation file (kept out of the header to avoid <mutex> here).
  struct Floor;
  Floor& floor();
};

// Deterministic clock for unit tests. Both axes start at the given values
// and move only when told to; jump_wall() steps the wall clock alone,
// modelling NTP corrections.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double wall_unix0 = 1.7e9, double monotonic0 = 0.0)
      : wall_(wall_unix0), mono_(monotonic0) {}

  double monotonic() const override { return mono_; }
  double wall_unix() const override { return wall_; }

  // Real time passing: both axes advance together.
  void advance(double seconds) {
    mono_ += seconds;
    wall_ += seconds;
  }

  // A wall-clock step (either sign); the monotonic axis is unaffected.
  void jump_wall(double seconds) { wall_ += seconds; }

 private:
  double wall_;
  double mono_;
};

}  // namespace minergy::util
