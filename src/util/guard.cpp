#include "util/guard.h"

#include <cmath>
#include <sstream>

namespace minergy::util {
namespace {

std::string describe(double value, const std::string& context) {
  std::ostringstream os;
  os << "non-physical value ";
  if (std::isnan(value)) {
    os << "NaN";
  } else {
    os << value;
  }
  os << " for " << context;
  return os.str();
}

}  // namespace

NumericError::NumericError(double value, const std::string& context)
    : std::runtime_error(describe(value, context)),
      value_(value),
      context_(context) {}

double finite_or_throw(double value, const std::string& context) {
  if (!std::isfinite(value)) throw NumericError(value, context);
  return value;
}

double finite_nonneg_or_throw(double value, const std::string& context) {
  if (!std::isfinite(value) || value < 0.0) throw NumericError(value, context);
  return value;
}

Watchdog::Watchdog(const WatchdogBudget& budget)
    : budget_(budget), start_(std::chrono::steady_clock::now()) {}

void Watchdog::restart() {
  start_ = std::chrono::steady_clock::now();
  evaluations_.store(0, std::memory_order_relaxed);
}

bool Watchdog::note_evaluation(std::int64_t n) {
  evaluations_.fetch_add(n, std::memory_order_relaxed);
  return expired();
}

bool Watchdog::expired() const { return expiry_reason() != nullptr; }

const char* Watchdog::expiry_reason() const {
  if (budget_.max_evaluations > 0 && evaluations_ >= budget_.max_evaluations) {
    return "evaluation budget";
  }
  if (budget_.wall_seconds != std::numeric_limits<double>::infinity() &&
      elapsed_seconds() >= budget_.wall_seconds) {
    return "wall-clock deadline";
  }
  return nullptr;
}

double Watchdog::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace minergy::util
