#include "util/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace minergy::util {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_eng(double value, std::string_view unit, int precision) {
  static constexpr struct {
    double scale;
    const char* prefix;
  } kScales[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},  {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
      {1e-18, "a"},
  };
  if (value == 0.0) return "0" + std::string(unit);
  const double mag = std::fabs(value);
  for (const auto& s : kScales) {
    if (mag >= s.scale) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*f%s%s", precision, value / s.scale,
                    s.prefix, std::string(unit).c_str());
      return buf;
    }
  }
  return format_sci(value, precision) + std::string(unit);
}

std::string format_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, value);
  return buf;
}

}  // namespace minergy::util
