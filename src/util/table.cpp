#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace minergy::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MINERGY_CHECK(!headers_.empty());
}

Table& Table::begin_row() {
  if (!rows_.empty()) {
    MINERGY_CHECK_MSG(rows_.back().size() == headers_.size(),
                      "previous row incomplete");
  }
  rows_.emplace_back();
  return *this;
}

void Table::check_row_open() const {
  MINERGY_CHECK_MSG(!rows_.empty(), "begin_row() before add()");
  MINERGY_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflow");
}

Table& Table::add(std::string cell) {
  check_row_open();
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return add(std::string(buf));
}

Table& Table::add_sci(double value, int precision) {
  return add(format_sci(value, precision));
}

Table& Table::add(int value) { return add(std::to_string(value)); }

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }

Table& Table::add_row(std::vector<std::string> cells) {
  MINERGY_CHECK(cells.size() == headers_.size());
  begin_row();
  for (auto& c : cells) add(std::move(c));
  return *this;
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  MINERGY_CHECK(row < rows_.size() && col < rows_[row].size());
  return rows_[row][col];
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << v << std::string(width[c] - v.size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << ' ' << (c < cells.size() ? cells[c] : std::string()) << " |";
    }
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text(); }

}  // namespace minergy::util
