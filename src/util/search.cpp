#include "util/search.h"

#include <cmath>

#include "util/check.h"

namespace minergy::util {

double bisect_min_true(double lo, double hi, int steps,
                       const std::function<bool(double)>& pred) {
  MINERGY_CHECK(lo <= hi);
  for (int i = 0; i < steps; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (pred(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double bisect_max_true(double lo, double hi, int steps,
                       const std::function<bool(double)>& pred) {
  MINERGY_CHECK(lo <= hi);
  for (int i = 0; i < steps; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (pred(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double golden_section_min(double lo, double hi, int steps,
                          const std::function<double(double)>& f) {
  MINERGY_CHECK(lo <= hi);
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c), fd = f(d);
  for (int i = 0; i < steps; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  return fc < fd ? c : d;
}

}  // namespace minergy::util
