// Fixed-size thread pool for the evaluation hot path.
//
// Deliberately simple: no work stealing, no futures, no task graph. The one
// primitive is parallel_for(n, fn) — run fn(i) for every i in [0, n) across
// the pool and the calling thread, and return when all n are done. Callers
// get determinism by construction: each index writes its own output slot and
// any reduction happens serially, in index order, after the call returns, so
// results are bit-identical at every thread count (see DESIGN.md, "Parallel
// evaluation & determinism").
//
// The calling thread always participates in the work. That guarantees
// forward progress under nesting (an annealing chain running on the pool can
// itself call parallel STA): a nested parallel_for simply runs inline on the
// worker it was issued from, never waiting on pool capacity it might be
// occupying.
//
// Exceptions thrown by fn are captured per index; after all indices finish,
// the exception with the lowest index is rethrown — the same one a serial
// loop would have surfaced first (a serial loop would not have run the later
// indices, but every fn here is required to be independent).
#pragma once

#include <cstddef>
#include <functional>

namespace minergy::util {

class ThreadPool {
 public:
  // `threads` counts total execution lanes including the caller; <= 0
  // selects std::thread::hardware_concurrency(). threads == 1 spawns no
  // workers and parallel_for degenerates to the plain serial loop.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Execution lanes (worker threads + the calling thread).
  int threads() const;

  // Runs fn(i) for all i in [0, n); blocks until every index completed.
  // Safe to call from inside a running fn (the nested call runs inline).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  Impl* impl_;
};

// Process-wide pool shared by STA, the width search and the optimizers.
// Lazily constructed on first use with the thread count last requested via
// set_global_threads (default: hardware concurrency).
ThreadPool& global_pool();

// Requests `n` execution lanes for the global pool (<= 0 = hardware
// concurrency). Takes effect immediately: an existing pool with a different
// lane count is torn down and rebuilt. Not safe to call concurrently with
// global-pool parallel_for calls — wire it once at process startup
// (the --threads flag), before any evaluation begins.
void set_global_threads(int n);

// Lanes the global pool currently offers (without forcing construction).
int global_threads();

}  // namespace minergy::util
