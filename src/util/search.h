// Numeric search primitives used by the optimizer.
//
// Range models the paper's Procedure 2 vocabulary: MID(XRange) is the
// midpoint, LOWER/HIGHER are the half-intervals split at MID.
#pragma once

#include <functional>

namespace minergy::util {

struct Range {
  double lo;
  double hi;

  double mid() const { return 0.5 * (lo + hi); }
  Range lower() const { return {lo, mid()}; }
  Range higher() const { return {mid(), hi}; }
  double width() const { return hi - lo; }
  bool contains(double x) const { return x >= lo && x <= hi; }
  double clamp(double x) const { return x < lo ? lo : (x > hi ? hi : x); }
};

// Smallest x in [lo, hi] with pred(x) true, assuming pred is monotone
// (false ... false true ... true). Returns hi if pred never becomes true
// within `steps` bisections; callers must verify pred at the result.
double bisect_min_true(double lo, double hi, int steps,
                       const std::function<bool(double)>& pred);

// Largest x in [lo, hi] with pred(x) true, assuming monotone
// (true ... true false ... false).
double bisect_max_true(double lo, double hi, int steps,
                       const std::function<bool(double)>& pred);

// Golden-section minimization of a unimodal function on [lo, hi].
double golden_section_min(double lo, double hi, int steps,
                          const std::function<double(double)>& f);

}  // namespace minergy::util
