#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace minergy::util {

namespace {

obs::Counter& pool_jobs() {
  static obs::Counter& c = obs::counter("util.pool.jobs");
  return c;
}

obs::Counter& pool_inline_jobs() {
  static obs::Counter& c = obs::counter("util.pool.inline_jobs");
  return c;
}

obs::Counter& pool_tasks() {
  static obs::Counter& c = obs::counter("util.pool.tasks");
  return c;
}

// Set while a thread (worker or caller) is executing parallel_for indices.
// A nested parallel_for issued from inside a task must not wait on pool
// capacity that its own thread is occupying, so it runs inline instead.
thread_local bool tl_in_job = false;

}  // namespace

struct ThreadPool::Impl {
  // One broadcast job at a time. Workers claim indices with fetch_add so no
  // index runs twice; the last thread to finish signals done_cv. Errors keep
  // the lowest-index exception so the rethrow matches what a serial loop
  // would have surfaced first.
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::mutex error_mutex;
    std::size_t error_index = 0;
    std::exception_ptr error;

    void run_indices() {
      tl_in_job = true;
      std::size_t done = 0;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error || i < error_index) {
            error = std::current_exception();
            error_index = i;
          }
        }
        ++done;
      }
      tl_in_job = false;
      if (done > 0) {
        pool_tasks().add(static_cast<std::int64_t>(done));
        completed.fetch_add(done, std::memory_order_acq_rel);
      }
    }
  };

  explicit Impl(int threads) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    lanes = threads <= 0 ? static_cast<int>(hw) : threads;
    const int workers_wanted = lanes - 1;
    workers.reserve(static_cast<std::size_t>(workers_wanted > 0 ? workers_wanted : 0));
    for (int w = 0; w < workers_wanted; ++w) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    job_cv.notify_all();
    for (auto& t : workers) t.join();
  }

  void worker_loop() {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        job_cv.wait(lock, [&] { return stopping || epoch != seen_epoch; });
        if (stopping) return;
        seen_epoch = epoch;
        job = current;
      }
      if (!job) continue;
      job->run_indices();
      if (job->completed.load(std::memory_order_acquire) >= job->n) {
        // Acquire the mutex (empty critical section) before notifying so the
        // caller cannot evaluate its wait predicate between our fetch_add and
        // this notify and then sleep through it.
        { std::lock_guard<std::mutex> lock(mutex); }
        done_cv.notify_all();
      }
    }
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;
    {
      std::lock_guard<std::mutex> lock(mutex);
      current = job;
      ++epoch;
    }
    job_cv.notify_all();
    // The caller is a lane too: it claims indices alongside the workers, so
    // a pool is never idle while its owner spins.
    job->run_indices();
    if (job->completed.load(std::memory_order_acquire) < n) {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] {
        return job->completed.load(std::memory_order_acquire) >= n;
      });
    }
    {
      // Drop the pool's reference so `fn` cannot be touched after return;
      // workers that saw this epoch have already finished their indices.
      std::lock_guard<std::mutex> lock(mutex);
      if (current == job) current.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
  }

  int lanes = 1;
  std::vector<std::thread> workers;
  std::mutex mutex;
  std::condition_variable job_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Job> current;
  std::uint64_t epoch = 0;
  bool stopping = false;
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl(threads)) {}

ThreadPool::~ThreadPool() { delete impl_; }

int ThreadPool::threads() const { return impl_->lanes; }

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || impl_->workers.empty() || tl_in_job) {
    pool_inline_jobs().add(1);
    const bool was_in_job = tl_in_job;
    tl_in_job = true;
    try {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    } catch (...) {
      tl_in_job = was_in_job;
      throw;
    }
    tl_in_job = was_in_job;
    pool_tasks().add(static_cast<std::int64_t>(n));
    return;
  }
  pool_jobs().add(1);
  impl_->run(n, fn);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_requested_threads = 0;  // <= 0: hardware concurrency

int resolve_lanes(int n) {
  if (n > 0) return n;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(g_requested_threads);
  return *g_pool;
}

void set_global_threads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_requested_threads = n;
  if (g_pool && g_pool->threads() != resolve_lanes(n)) g_pool.reset();
}

int global_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return g_pool ? g_pool->threads() : resolve_lanes(g_requested_threads);
}

}  // namespace minergy::util
