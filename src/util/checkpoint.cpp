#include "util/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace minergy::util {

void atomic_write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw ParseError("cannot open for writing", tmp, 0);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) throw ParseError("write failed", tmp, 0);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ParseError("rename to final path failed", path, 0);
  }
}

std::string read_file_or_throw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open file", path, 0);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void Checkpoint::save(const std::string& path, const std::string& schema,
                      const std::string& payload_json) {
  // The envelope is assembled textually so the payload (already serialized
  // by its owner) is embedded verbatim rather than re-parsed.
  std::string doc;
  doc.reserve(payload_json.size() + schema.size() + 32);
  doc += "{\"schema\":";
  doc += json_escape(schema);
  doc += ",\"payload\":";
  doc += payload_json;
  doc += "}";
  atomic_write_file(path, doc);
}

JsonValue Checkpoint::load(const std::string& path,
                           const std::string& expected_schema) {
  const JsonValue root = JsonValue::parse(read_file_or_throw(path), path);
  if (!root.is_object() || !root.has("schema") || !root.has("payload")) {
    throw ParseError("not a checkpoint envelope (schema/payload missing)",
                     path, 0);
  }
  const std::string& schema = root.at("schema").as_string();
  if (schema != expected_schema) {
    throw ParseError("checkpoint schema '" + schema + "' does not match '" +
                         expected_schema + "'",
                     path, 0);
  }
  return root.at("payload");
}

}  // namespace minergy::util
