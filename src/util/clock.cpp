#include "util/clock.h"

#include <time.h>

#include <map>
#include <mutex>

namespace minergy::util {

namespace {

double read_clock(clockid_t id) {
  struct timespec ts;
  clock_gettime(id, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

double Clock::monotonic() const { return read_clock(CLOCK_MONOTONIC); }

double Clock::wall_unix() const { return read_clock(CLOCK_REALTIME); }

// Per-clock floor state lives in a function-static map keyed by the clock
// instance so VirtualClock objects in tests each get independent floors and
// nothing needs to be declared in the header. The map only ever holds a
// handful of entries (the system clock plus test clocks) and entries are
// never erased — a Clock's floor must outlive any concurrent caller.
struct Clock::Floor {
  std::mutex mu;
  bool seeded = false;
  double last_unix = 0.0;  // last value returned
  double last_mono = 0.0;  // monotonic() when it was returned
};

Clock::Floor& Clock::floor() {
  static std::mutex map_mu;
  static std::map<const Clock*, Floor>* floors = new std::map<const Clock*, Floor>();
  std::lock_guard<std::mutex> lock(map_mu);
  return (*floors)[this];
}

double Clock::unix_monotone() {
  Floor& f = floor();
  std::lock_guard<std::mutex> lock(f.mu);
  const double mono = monotonic();
  const double wall = wall_unix();
  if (!f.seeded) {
    f.seeded = true;
    f.last_unix = wall;
    f.last_mono = mono;
    return wall;
  }
  // The clock must advance by at least the monotonic elapsed time even if
  // the wall clock stepped backwards; a forward wall step wins outright.
  const double floor_unix = f.last_unix + (mono - f.last_mono);
  const double out = wall > floor_unix ? wall : floor_unix;
  f.last_unix = out;
  f.last_mono = mono;
  return out;
}

Clock& Clock::system() {
  static Clock* clock = new Clock();
  return *clock;
}

}  // namespace minergy::util
