#include "util/fault_injection.h"

#include <limits>
#include <stdexcept>

#include "netlist/bench_io.h"
#include "netlist/gate.h"
#include "netlist/verilog_io.h"
#include "obs/metrics.h"
#include "tech/tech_io.h"
#include "util/check.h"

namespace minergy::fault {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

double corrupted_value(double original, FaultKind kind) {
  switch (kind) {
    case FaultKind::kNaN:
      return kNaN;
    case FaultKind::kInfinity:
      return kInf;
    case FaultKind::kZero:
      return 0.0;
    case FaultKind::kNegative:
      return original == 0.0 ? -1.0 : -original;
  }
  return kNaN;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNaN:
      return "NaN";
    case FaultKind::kInfinity:
      return "inf";
    case FaultKind::kZero:
      return "zero";
    case FaultKind::kNegative:
      return "negative";
  }
  return "?";
}

void corrupt_tech_field(tech::Technology* tech, const std::string& field,
                        FaultKind kind) {
  double* slot = tech::technology_field(*tech, field);
  if (slot == nullptr) {
    throw std::out_of_range("unknown technology field: " + field);
  }
  *slot = corrupted_value(*slot, kind);
}

std::vector<TechFault> tech_fault_catalog() {
  // One corrupted field per case, spanning every corruption kind and every
  // parameter family (drive, capacitance, interconnect, ranges, system).
  const struct {
    const char* field;
    FaultKind kind;
  } kCases[] = {
      {"pc", FaultKind::kNaN},
      {"pc", FaultKind::kZero},
      {"cgate_per_w", FaultKind::kZero},
      {"cgate_per_w", FaultKind::kNaN},
      {"cpar_per_w", FaultKind::kNegative},
      {"feature_size", FaultKind::kNaN},
      {"feature_size", FaultKind::kInfinity},
      {"temperature", FaultKind::kZero},
      {"wire_cap_per_len", FaultKind::kInfinity},
      {"vdd_max", FaultKind::kZero},
      {"vdd_max", FaultKind::kInfinity},
      {"vts_min", FaultKind::kNegative},
      {"vts_max", FaultKind::kNaN},
      {"leakage_scale", FaultKind::kZero},
      {"rent_exponent", FaultKind::kNegative},
      {"w_max", FaultKind::kZero},
      {"clock_skew_b", FaultKind::kInfinity},
      {"n_sub", FaultKind::kNaN},
  };
  std::vector<TechFault> catalog;
  for (const auto& c : kCases) {
    TechFault f;
    f.name = std::string(c.field) + "=" + to_string(c.kind);
    f.tech = tech::Technology::generic350();
    corrupt_tech_field(&f.tech, c.field, c.kind);
    catalog.push_back(std::move(f));
  }
  return catalog;
}

std::vector<TechFault> stress_tech_catalog() {
  std::vector<TechFault> catalog;
  {
    // Denormal drive strength: every delay divides by a vanishing current,
    // arrival times overflow toward infinity.
    TechFault f;
    f.name = "pc=1e-300 (vanishing drive)";
    f.tech = tech::Technology::generic350();
    f.tech.pc = 1e-300;
    catalog.push_back(std::move(f));
  }
  {
    // Enormous wire parasitics: energies and delays blow up by ~1e12.
    TechFault f;
    f.name = "wire_cap_per_len=1e3 (monster parasitics)";
    f.tech = tech::Technology::generic350();
    f.tech.wire_cap_per_len = 1e3;
    catalog.push_back(std::move(f));
  }
  {
    // A sliver of a feasible voltage window: the nested searches get a
    // near-degenerate interval and must still terminate.
    TechFault f;
    f.name = "degenerate voltage window";
    f.tech = tech::Technology::generic350();
    f.tech.vdd_min = 0.30;
    f.tech.vdd_max = 0.30000001;
    f.tech.vts_min = 0.29;
    f.tech.vts_max = 0.2999999;
    catalog.push_back(std::move(f));
  }
  {
    // Huge junction leakage: static energy dominates by orders of
    // magnitude; the optimizer must not return NaN ratios.
    TechFault f;
    f.name = "junction_leak_per_w=1e6";
    f.tech = tech::Technology::generic350();
    f.tech.junction_leak_per_w = 1e6;
    catalog.push_back(std::move(f));
  }
  return catalog;
}

std::vector<ParserFault> parser_fault_catalog() {
  return {
      // --- .bench ----------------------------------------------------------
      {"bench: truncated final line", TextFormat::kBench,
       "INPUT(a)\nOUTPUT(y)\ny = NAND(a"},
      {"bench: truncated INPUT", TextFormat::kBench, "INPUT(a"},
      {"bench: duplicate gate definition", TextFormat::kBench,
       "INPUT(a)\ny = NOT(a)\ny = NOT(a)\nOUTPUT(y)\n"},
      {"bench: duplicate INPUT declaration", TextFormat::kBench,
       "INPUT(a)\nINPUT(a)\ny = NOT(a)\nOUTPUT(y)\n"},
      {"bench: undeclared fanin", TextFormat::kBench,
       "INPUT(a)\ny = NAND(a, ghost)\nOUTPUT(y)\n"},
      {"bench: undeclared OUTPUT", TextFormat::kBench,
       "INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n"},
      {"bench: unknown gate type", TextFormat::kBench,
       "INPUT(a)\ny = MAJ3(a, a, a)\nOUTPUT(y)\n"},
      {"bench: missing signal name", TextFormat::kBench,
       "INPUT(a)\n = NOT(a)\n"},
      {"bench: gate with no fanins", TextFormat::kBench,
       "INPUT(a)\ny = NAND()\nOUTPUT(y)\n"},
      // --- Verilog ---------------------------------------------------------
      {"verilog: truncated final statement", TextFormat::kVerilog,
       "module t(a, y);\ninput a;\noutput y;\nnot u1 (y, a"},
      {"verilog: missing endmodule", TextFormat::kVerilog,
       "module t(a, y);\ninput a;\noutput y;\nnot u1 (y, a);\n"},
      {"verilog: duplicate driver", TextFormat::kVerilog,
       "module t(a, y);\ninput a;\noutput y;\nnot u1 (y, a);\n"
       "not u2 (y, a);\nendmodule\n"},
      {"verilog: duplicate input", TextFormat::kVerilog,
       "module t(a, y);\ninput a;\ninput a;\noutput y;\nnot u1 (y, a);\n"
       "endmodule\n"},
      {"verilog: undriven signal", TextFormat::kVerilog,
       "module t(a, y);\ninput a;\noutput y;\nnand u1 (y, a, ghost);\n"
       "endmodule\n"},
      {"verilog: undriven output", TextFormat::kVerilog,
       "module t(a, y);\ninput a;\noutput y;\nendmodule\n"},
      {"verilog: unknown primitive", TextFormat::kVerilog,
       "module t(a, y);\ninput a;\noutput y;\nmux2 u1 (y, a, a);\n"
       "endmodule\n"},
      {"verilog: statement outside module", TextFormat::kVerilog,
       "input a;\nmodule t(a);\nendmodule\n"},
      {"verilog: empty terminal", TextFormat::kVerilog,
       "module t(a, y);\ninput a;\noutput y;\nnot u1 (y, );\nendmodule\n"},
      // --- technology files ------------------------------------------------
      {"tech: unknown parameter", TextFormat::kTech, "frobnication = 3\n"},
      {"tech: bad numeric value", TextFormat::kTech, "pc = fast\n"},
      {"tech: missing equals", TextFormat::kTech, "pc 175\n"},
      {"tech: late base directive", TextFormat::kTech,
       "pc = 175\nbase = generic250\n"},
      {"tech: corrupt value range", TextFormat::kTech, "vdd_max = -3\n"},
  };
}

void parse_fault_text(const ParserFault& fault) {
  switch (fault.format) {
    case TextFormat::kBench:
      netlist::parse_bench_string(fault.text, fault.name);
      return;
    case TextFormat::kVerilog:
      netlist::parse_verilog_string(fault.text, fault.name);
      return;
    case TextFormat::kTech:
      tech::parse_technology_string(fault.text, fault.name);
      return;
  }
}

std::vector<NetlistFault> netlist_fault_catalog() {
  return {
      {"combinational cycle", "a -> b -> a loop in the logic core"},
      {"self loop", "gate feeding its own fanin list"},
      {"dangling fanin id", "fanin references a gate id that was never made"},
      {"bad arity", "single-input gate type with two fanins"},
      {"duplicate name", "two gates registered under one name"},
  };
}

void run_netlist_fault(const std::string& name) {
  using netlist::GateType;
  netlist::Netlist nl(name);
  if (name == "combinational cycle") {
    const auto in = nl.add_input("x");
    const auto a = nl.add_gate(GateType::kAnd, "a");
    const auto b = nl.add_gate(GateType::kAnd, "b");
    nl.set_fanins(a, {in, b});
    nl.set_fanins(b, {in, a});
    nl.mark_output(b);
  } else if (name == "self loop") {
    const auto in = nl.add_input("x");
    const auto a = nl.add_gate(GateType::kAnd, "a");
    nl.set_fanins(a, {in, a});
    nl.mark_output(a);
  } else if (name == "dangling fanin id") {
    nl.add_input("x");
    nl.add_gate(GateType::kNot, "a", {netlist::GateId{57}});
  } else if (name == "bad arity") {
    const auto in = nl.add_input("x");
    const auto a = nl.add_gate(GateType::kNot, "a");
    nl.set_fanins(a, {in, in});
  } else if (name == "duplicate name") {
    nl.add_input("x");
    nl.add_gate(GateType::kNot, "x");  // throws here, before finalize
  } else {
    throw std::out_of_range("unknown netlist fault case: " + name);
  }
  nl.finalize();
}

std::vector<ResultFault> result_fault_catalog() {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  std::vector<ResultFault> cat;
  cat.push_back({"nan-dynamic-energy", "energy-report-mismatch",
                 [](opt::OptimizationResult* r) {
                   r->energy.dynamic_energy = kNaN;
                 }});
  cat.push_back({"scaled-total-energy", "energy-report-mismatch",
                 [](opt::OptimizationResult* r) {
                   // A 1% bookkeeping drift — small enough to look
                   // plausible in a results table.
                   r->energy.dynamic_energy *= 1.01;
                   r->energy.static_energy *= 1.01;
                 }});
  cat.push_back({"underreported-delay", "timing-report-mismatch",
                 [](opt::OptimizationResult* r) {
                   r->critical_delay *= 0.5;
                 }});
  cat.push_back({"out-of-range-width", "width-range",
                 [](opt::OptimizationResult* r) {
                   if (!r->state.widths.empty()) {
                     r->state.widths.back() = 1.0e4;  // far above w_max
                   }
                 }});
  cat.push_back({"vdd-above-technology", "vdd-range",
                 [](opt::OptimizationResult* r) {
                   r->state.vdd = 9.0;
                   r->vdd = 9.0;
                 }});
  cat.push_back({"operating-point-drift", "operating-point-mismatch",
                 [](opt::OptimizationResult* r) {
                   r->vdd = r->state.vdd + 0.25;
                 }});
  cat.push_back({"truncated-state-arrays", "state-shape",
                 [](opt::OptimizationResult* r) {
                   if (!r->state.widths.empty()) r->state.widths.pop_back();
                 }});
  cat.push_back({"non-monotone-trajectory", "trajectory-monotone",
                 [](opt::OptimizationResult* r) {
                   obs::TrajectoryPoint tp;
                   tp.phase = "corrupt";
                   tp.energy = r->energy.total() * 10.0;
                   tp.feasible = true;
                   tp.accepted = true;
                   r->report.add_point(std::move(tp));
                   obs::TrajectoryPoint tail;
                   tail.phase = "corrupt";
                   tail.energy = r->energy.total();
                   tail.feasible = true;
                   tail.accepted = true;
                   r->report.add_point(std::move(tail));
                 }});
  return cat;
}

CatalogTally run_fault_catalogs() {
  CatalogTally tally;
  // Tally one catalog entry: bump the counter pair and remember the names
  // of contract breaches so callers can print actionable diagnostics.
  auto score = [&tally](const char* catalog, const std::string& name,
                        bool passed, int* pass, int* fail) {
    const std::string prefix = std::string("fault.") + catalog;
    if (passed) {
      obs::counter(prefix + ".pass").add();
      ++*pass;
    } else {
      obs::counter(prefix + ".fail").add();
      ++*fail;
      tally.failures.push_back(std::string(catalog) + ": " + name);
    }
  };

  for (const TechFault& f : tech_fault_catalog()) {
    bool rejected = false;
    try {
      f.tech.validate();
    } catch (const tech::TechnologyError&) {
      rejected = true;
    }
    score("tech", f.name, rejected, &tally.tech_pass, &tally.tech_fail);
  }
  for (const ParserFault& f : parser_fault_catalog()) {
    bool rejected = false;
    try {
      parse_fault_text(f);
    } catch (const util::ParseError&) {
      rejected = true;
    } catch (const tech::TechnologyError&) {
      rejected = true;  // parsed cleanly but failed validation: contracted
    }
    score("parser", f.name, rejected, &tally.parser_pass, &tally.parser_fail);
  }
  for (const NetlistFault& f : netlist_fault_catalog()) {
    bool rejected = false;
    try {
      run_netlist_fault(f.name);
    } catch (const netlist::NetlistError&) {
      rejected = true;
    }
    score("netlist", f.name, rejected, &tally.netlist_pass,
          &tally.netlist_fail);
  }
  for (const TechFault& f : stress_tech_catalog()) {
    // Stress cases are *supposed* to pass validation — they probe the
    // numeric guards further downstream (see tests/test_fault_injection).
    bool accepted = true;
    try {
      f.tech.validate();
    } catch (const tech::TechnologyError&) {
      accepted = false;
    }
    score("stress", f.name, accepted, &tally.stress_pass, &tally.stress_fail);
  }
  return tally;
}

}  // namespace minergy::fault
