// Deterministic random-number generation.
//
// All stochastic components of minergy (surrogate-netlist generation,
// Monte-Carlo activity measurement, simulated annealing) take an explicit
// seeded Rng so that every experiment is bit-reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace minergy::util {

// Complete generator state, exposed so checkpoint/resume flows can freeze a
// stream mid-run and continue it bit-exactly (see util/checkpoint.h). The
// spare normal from the Marsaglia polar method is part of the state: without
// it a restored stream would diverge on the first normal() draw.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  bool have_spare_normal = false;
  double spare_normal = 0.0;
};

// xoshiro256++ by Blackman & Vigna: fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit word.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  // Bernoulli trial with success probability p.
  bool bernoulli(double p);

  // Standard normal via Marsaglia polar method.
  double normal();
  double normal(double mean, double stddev);

  // A decorrelated child generator (for per-object streams).
  Rng split();

  // Snapshot / restore the full stream position (bit-exact continuation).
  RngState state() const;
  void restore(const RngState& s);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

// A stateless 64-bit mix (SplitMix64 finalizer). Used to derive reproducible
// per-entity quantiles (e.g. a net id -> wire-length quantile) without
// carrying generator state.
std::uint64_t hash_mix(std::uint64_t x);

// hash_mix mapped to a double in [0, 1).
double hash_unit(std::uint64_t x);

}  // namespace minergy::util
