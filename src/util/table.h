// Column-aligned text tables with CSV and Markdown emitters.
//
// The bench binaries use this to print the paper's Tables 1/2 and figure
// series in a uniform, machine-diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace minergy::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Start a new row. Subsequent add_* calls append cells to it.
  Table& begin_row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 4);
  Table& add_sci(double value, int precision = 3);
  Table& add(int value);
  Table& add(std::size_t value);

  // Convenience: append a fully formed row (must match header width).
  Table& add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const;

  // Renderers.
  std::string to_text() const;      // padded ASCII columns
  std::string to_csv() const;       // RFC-ish CSV (quotes fields with commas)
  std::string to_markdown() const;  // GitHub-flavored pipe table

  void print(std::ostream& os) const;  // to_text()

 private:
  void check_row_open() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace minergy::util
