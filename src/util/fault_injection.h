// Deterministic fault-injection harness.
//
// Catalogs of corrupted inputs — broken technology parameters, garbled
// `.bench`/Verilog sources, structurally degenerate netlists, and
// validate-passing-but-numerically-extreme "stress" technologies — used by
// tests/test_fault_injection.cpp to assert the robustness contract: every
// injected fault must surface as a *typed* exception (ParseError,
// TechnologyError, NetlistError, NumericError, InfeasibleError) or as an
// explicitly flagged fallback/truncated result. Never a NaN energy, a hang,
// or a crash.
//
// Everything here is deterministic (no RNG, no clocks) so a failing fault
// case reproduces byte-for-byte.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "opt/result.h"
#include "tech/technology.h"

namespace minergy::fault {

// How a numeric parameter gets corrupted.
enum class FaultKind { kNaN, kInfinity, kZero, kNegative };

const char* to_string(FaultKind kind);

// Overwrites one named Technology field (see tech::technology_field_names())
// in place. Throws std::out_of_range on an unknown field name.
void corrupt_tech_field(tech::Technology* tech, const std::string& field,
                        FaultKind kind);

// --- Catalog: corrupted technologies ---------------------------------------
// Each entry must be rejected by Technology::validate() (and therefore by
// CircuitEvaluator construction) with a tech::TechnologyError.
struct TechFault {
  std::string name;        // e.g. "pc=NaN"
  tech::Technology tech;   // generic350 with one field corrupted
};
std::vector<TechFault> tech_fault_catalog();

// --- Catalog: validate-passing numeric stress cases ------------------------
// Technologies that pass validate() but sit at numeric extremes (denormal
// drive currents, enormous parasitics): optimization over them must end in
// a typed exception or a flagged fallback result, never silent NaN.
std::vector<TechFault> stress_tech_catalog();

// --- Catalog: garbled parser inputs ----------------------------------------
// Each text must make the corresponding parser throw util::ParseError (or
// tech::TechnologyError for values that parse cleanly but fail validation).
enum class TextFormat { kBench, kVerilog, kTech };
struct ParserFault {
  std::string name;
  TextFormat format;
  std::string text;
};
std::vector<ParserFault> parser_fault_catalog();

// Runs the right parser for the fault's format (throws on garbled input).
void parse_fault_text(const ParserFault& fault);

// --- Catalog: structurally degenerate netlists -----------------------------
// Building + finalizing each case must throw netlist::NetlistError.
struct NetlistFault {
  std::string name;
  std::string description;
};
std::vector<NetlistFault> netlist_fault_catalog();

// Builds and finalizes the named degenerate netlist (throws NetlistError).
// Throws std::out_of_range on an unknown case name.
void run_netlist_fault(const std::string& name);

// --- Catalog: corrupted optimization results -------------------------------
// Named in-place corruptions of a *feasible* OptimizationResult, each
// modelling a realistic optimizer bookkeeping bug (a stale cached energy, a
// width clamp that drifted out of range, a feasibility flag set on the
// wrong STA, ...). The contract: opt::Certifier must refuse every one,
// naming `expected_invariant` as the violation. Deterministic — the
// corruptions are fixed transformations, no RNG.
struct ResultFault {
  std::string name;                // e.g. "nan-dynamic-energy"
  std::string expected_invariant;  // certifier invariant that must fire
  std::function<void(opt::OptimizationResult*)> corrupt;
};
std::vector<ResultFault> result_fault_catalog();

// --- Catalogue sweep with observability tally ------------------------------
// Runs every catalogued fault against its contract and tallies the outcome
// into the obs counter family `fault.<catalog>.{pass,fail}` (tech, parser,
// netlist, stress). "Pass" means the contract held: the corrupt input raised
// its typed exception, or — for stress cases — the validate-passing extreme
// was accepted by Technology::validate(). The optimization-level behavior of
// stress technologies stays in tests/test_fault_injection.cpp; this sweep is
// the cheap, deterministic front line suitable for tools and CI telemetry.
struct CatalogTally {
  int tech_pass = 0, tech_fail = 0;
  int parser_pass = 0, parser_fail = 0;
  int netlist_pass = 0, netlist_fail = 0;
  int stress_pass = 0, stress_fail = 0;
  std::vector<std::string> failures;  // names of faults whose contract broke

  int total_pass() const {
    return tech_pass + parser_pass + netlist_pass + stress_pass;
  }
  int total_fail() const {
    return tech_fail + parser_fail + netlist_fail + stress_fail;
  }
};
CatalogTally run_fault_catalogs();

}  // namespace minergy::fault
