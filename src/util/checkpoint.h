// Crash-safe checkpoint files — forwarding header.
//
// The real implementation moved to src/io/ when the durable I/O layer was
// introduced: writes now fsync the file and its parent directory, carry a
// CRC32 artifact-envelope footer, and keep io::Checkpoint::kGenerations
// last-good generations with generation-by-generation resume fallback
// (see io/checkpoint.h and docs/ROBUSTNESS.md, "Durability & integrity").
//
// This header keeps the historical util:: spellings alive so checkpoint
// owners (opt/checkpoint.*) and older call sites compile unchanged while
// transparently gaining the durable path. New code should include the io/
// headers directly.
#pragma once

#include <string>
#include <string_view>

#include "io/checkpoint.h"
#include "io/durable.h"
#include "io/envelope.h"

namespace minergy::util {

// Atomic, durable whole-file replace (temp -> fsync -> rename -> fsync
// parent dir). Throws io::IoError / io::DiskFullError on storage failure.
inline void atomic_write_file(const std::string& path,
                              std::string_view content) {
  io::atomic_write_durable(path, content);
}

// Whole-file read; throws ParseError when the file cannot be opened.
inline std::string read_file_or_throw(const std::string& path) {
  return io::read_file_or_throw(path);
}

using Checkpoint = io::Checkpoint;

}  // namespace minergy::util
