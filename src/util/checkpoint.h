// Crash-safe checkpoint files.
//
// Long runs (annealing passes, batch sweeps over a circuit suite) must
// survive being killed mid-flight: a checkpoint is a small JSON envelope
//
//   { "schema": "minergy.anneal_checkpoint.v1", "payload": { ... } }
//
// written atomically (temp file in the same directory, then rename) so a
// crash during the write never leaves a torn file — the previous snapshot
// stays intact. The payload encoding belongs to the owner of the schema
// (see opt/checkpoint.h for the optimizer payloads); this layer only
// guarantees atomic replacement and schema-checked loading.
#pragma once

#include <string>
#include <string_view>

#include "util/json.h"

namespace minergy::util {

// Atomically replaces `path` with `content`: writes `path + ".tmp"`, flushes,
// then renames over the target. Throws ParseError (file context) on I/O
// failure.
void atomic_write_file(const std::string& path, std::string_view content);

// Whole-file read; throws ParseError when the file cannot be opened.
std::string read_file_or_throw(const std::string& path);

struct Checkpoint {
  // Writes { "schema": schema, "payload": <payload_json> } atomically.
  // `payload_json` must be a complete JSON value (normally an object built
  // with JsonWriter).
  static void save(const std::string& path, const std::string& schema,
                   const std::string& payload_json);

  // Loads `path`, validates the envelope and the schema name, and returns
  // the payload node. Throws ParseError on a missing/torn file or a schema
  // mismatch — a caller can treat that as "start fresh" or as a hard error.
  static JsonValue load(const std::string& path,
                        const std::string& expected_schema);
};

}  // namespace minergy::util
