// Counters, gauges and log-bucket histograms for the optimizer stack.
//
// Design goals, in order:
//   1. Near-zero cost when disabled: an instrumentation site is one relaxed
//      atomic load and a predictable branch; no clocks, no locks, and zero
//      allocations on the increment path (registration allocates once).
//   2. Thread-safe when enabled: counters/gauges are single atomics with
//      relaxed ordering (they are statistics, not synchronization);
//      histograms are arrays of atomics.
//   3. Stable addresses: Registry hands out references that live for the
//      process, so hot paths cache them in function-local statics and pay
//      the name lookup exactly once.
//
// Collection is process-global and off by default; obs::set_enabled(true)
// (or an obs::Session built from --metrics/--trace/--report flags) turns it
// on. The metric catalogue is documented in docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/clock.h"

namespace minergy::obs {

namespace detail {
// Single global switch. Relaxed is sufficient: a torn view costs at most a
// few missed samples around the toggle, never corruption.
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t n = 1) {
    if (!enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Last-written value (e.g. the best energy seen so far).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Power-of-two bucket histogram over positive values (bucket b counts
// samples with 2^(b-kOriginExp-1) < v <= 2^(b-kOriginExp)); values <= 2^-32
// land in bucket 0, values above 2^31 in the last bucket. Covers ~19 decades
// — microsecond timings through energy magnitudes — with 64 atomics.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kOriginExp = 32;  // bucket 0 upper bound = 2^-32

  void record(double v);

  std::int64_t count() const;
  double sum() const;  // approximate: bucket midpoints x counts
  std::int64_t bucket_count(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }
  static double bucket_upper_bound(int b);
  // Upper bound of the bucket containing the p-quantile (p in [0, 1]).
  double percentile(double p) const;
  void reset();

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

// Records the elapsed time of a scope into a histogram, in microseconds.
// When collection is disabled the constructor reads one atomic and the
// clock is never touched.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : h_(enabled() ? &h : nullptr),
        start_us_(h_ != nullptr ? util::monotonic_micros() : 0.0) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->record(util::monotonic_micros() - start_us_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  double start_us_;
};

// Point-in-time copy of one histogram: raw bucket counts plus the derived
// aggregates the Prometheus exposition and perf records need.
struct HistogramSnapshot {
  std::array<std::int64_t, Histogram::kBuckets> buckets{};
  std::int64_t count = 0;
  double sum = 0.0;  // approximate: bucket midpoints x counts
  double p50 = 0.0;  // bucket upper bounds containing each quantile
  double p95 = 0.0;
  double p99 = 0.0;
};

// Name -> instrument registry. Lookup takes a mutex; instruments are stored
// node-stably so returned references remain valid forever. Hot paths are
// expected to cache the reference:
//
//   static obs::Counter& c = obs::counter("timing.sta.runs");
//   c.add();
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Snapshot of every registered counter's current value (including zeros).
  std::map<std::string, std::int64_t> counter_snapshot() const;
  std::map<std::string, double> gauge_snapshot() const;
  std::map<std::string, HistogramSnapshot> histogram_snapshot() const;

  // Zeroes every instrument (registration survives; addresses are stable).
  void reset();

  // Aligned human-readable table of all non-zero instruments (util::Table).
  std::string to_table() const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

// Builds the labeled-instrument naming convention understood by the
// Prometheus exposition (obs/expose.h): `family{key="value"}`. The family
// part is translated to a Prometheus name; the label set is emitted
// verbatim (value quotes/backslashes escaped here). Instruments sharing a
// family but differing in label sort adjacently in the registry, so the
// exposition emits one TYPE line per family.
std::string labeled_name(std::string_view family, std::string_view key,
                         std::string_view value);

}  // namespace minergy::obs
