// Scoped tracing in Chrome trace format.
//
// obs::Span is an RAII scope marker: construction timestamps the start,
// destruction records one "complete" (ph:"X") event into the process-global
// Tracer buffer. The resulting JSON loads directly in chrome://tracing and
// Perfetto (ui.perfetto.dev), giving a flame graph of the optimizer phases:
//
//   {
//     obs::Span span("joint.sweep");
//     ...nested Spans become nested slices...
//   }
//
// The tracer is off by default; an inactive Span costs one relaxed atomic
// load. Events are buffered in memory (a run traces thousands of phases,
// not millions of gate evaluations — per-gate work is counted by
// obs::Counter instead) and flushed with write_file()/to_json().
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace minergy::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   // start, microseconds since the process epoch
  double dur_us = 0.0;  // duration, microseconds
  std::uint64_t tid = 0;
};

class Tracer {
 public:
  static Tracer& instance();

  // Clears the buffer and starts capturing; stop() freezes the buffer
  // (write_file/to_json still see it); clear() stops AND discards it.
  void start();
  void stop();
  void clear();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  void record(std::string name, std::string category, double ts_us,
              double dur_us);
  // Instant (ph:"i") marker, e.g. "watchdog expired".
  void instant(std::string name, std::string category = "mark");

  std::size_t event_count() const;
  std::vector<TraceEvent> events() const;

  // Chrome trace JSON: {"traceEvents": [...], "displayTimeUnit": "ms"}.
  std::string to_json() const;
  // Returns false (with the buffer intact) when the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  Tracer() = default;

  std::atomic<bool> active_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<TraceEvent> instants_;
};

// RAII phase marker. The name/category must outlive the span (string
// literals in practice); the strings are copied only at destruction, and
// only when the tracer is active — an inactive span does no work at all.
class Span {
 public:
  explicit Span(const char* name, const char* category = "opt");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  double start_us_;
  bool active_;
};

}  // namespace minergy::obs
