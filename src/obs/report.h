// Run telemetry: the machine-readable story of one optimization run.
//
// Every OptimizationResult carries a RunReport — the iteration-by-iteration
// (Vdd, Vts, energy, critical-delay, feasibility) trajectory of the search,
// per-tier wall-clock and failure provenance from the RobustOptimizer
// fallback chain, the final operating point, and a snapshot of the obs
// counter deltas attributed to the run. Reports serialize to JSON
// (tools/minergy_report, --report=FILE flags) and parse back losslessly, so
// bench sweeps and regression tooling can diff convergence behaviour
// across commits. The schema is documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace minergy::obs {

// One probe of the search: a candidate operating point and its evaluation.
struct TrajectoryPoint {
  int iteration = 0;       // 0-based probe index within the run
  std::string phase;       // e.g. "sweep", "refine", "multi-vt", "anneal"
  double vdd = 0.0;
  double vts = 0.0;        // primary/uniform threshold of the probe
  double energy = 0.0;     // total energy per cycle (J)
  double critical_delay = 0.0;  // s
  bool feasible = false;
  bool accepted = false;   // improved the best-seen feasible energy
};

// One tier of the RobustOptimizer fallback chain.
struct TierRecord {
  std::string tier;          // "joint" / "baseline" / "last-resort"
  double wall_seconds = 0.0;
  bool selected = false;     // this tier produced the final answer
  std::string failure_reason;  // empty when selected

  // Outcome of the independent result certification (opt::Certifier) for
  // this tier: "" when certification was not run, "pass", or "fail". On
  // "fail", certificate_detail names the violated invariant and culprit.
  std::string certificate_status;
  std::string certificate_detail;
};

struct RunReport {
  std::string optimizer;  // "joint" / "baseline" / "robust" / "annealing"
  std::string circuit;

  // Final operating point (duplicating the OptimizationResult scalars so a
  // serialized report is self-contained).
  bool feasible = false;
  double vdd = 0.0;
  double vts_primary = 0.0;
  double energy_total = 0.0;
  double static_energy = 0.0;
  double dynamic_energy = 0.0;
  double critical_delay = 0.0;
  double runtime_seconds = 0.0;
  std::int64_t circuit_evaluations = 0;

  // Provenance.
  std::string tier;  // tier that produced the answer
  bool truncated = false;
  std::string truncation_reason;

  std::vector<TrajectoryPoint> trajectory;
  std::vector<TierRecord> tiers;  // empty for single-tier optimizers

  // Counter deltas over the run (end minus start), when collection was
  // enabled; empty otherwise.
  std::map<std::string, std::int64_t> counters;

  // Convenience for recorders.
  void add_point(TrajectoryPoint p);
  // Energies of accepted probes, in order (acceptance implies this sequence
  // is non-increasing; tools/trace_check asserts it).
  std::vector<double> accepted_energies() const;

  std::string to_json(int indent = 1) const;
  // Throws util::ParseError on malformed text or schema violations.
  static RunReport from_json(const std::string& text,
                             const std::string& source_name = "<report>");
};

// Captures the registry's counter snapshot at construction and writes the
// delta into `report.counters` at finish(). No-ops when collection is off.
class CounterDelta {
 public:
  CounterDelta();
  void finish(RunReport* report) const;

 private:
  bool enabled_at_start_;
  std::map<std::string, std::int64_t> start_;
};

}  // namespace minergy::obs
