// Embedded HTTP exposition server: live /metrics, /health and /jobs.
//
// A long-running daemon's counters and health must be scrapeable while it
// works, not reconstructed from files after it exits. ExpositionServer is a
// zero-dependency, single-thread HTTP/1.0 responder bound to
// 127.0.0.1:<port> (port 0 picks an ephemeral one):
//
//   GET /metrics   Prometheus text exposition of the global obs::Registry —
//                  counters, gauges, and log-bucket histograms rendered as
//                  `_bucket{le="..."}` / `_sum` / `_count` series plus
//                  `_p50` / `_p95` / `_p99` gauges. Dotted internal names
//                  map to Prometheus names by replacing every character
//                  outside [a-zA-Z0-9_:] with '_' (docs/OBSERVABILITY.md
//                  has the full map).
//   GET /health    the latest document published under "/health" (the
//                  daemon publishes its minergy.health.v1 JSON from memory
//                  on every refresh — no file read on the scrape path).
//   GET /jobs      the latest "/jobs" document (live spool-state partition
//                  plus breaker states, schema minergy.jobs.v1).
//
// One thread serves requests serially from a blocking poll/accept loop —
// scrapes are rare and tiny, so concurrency buys nothing and a serial loop
// cannot race itself. All shared state is either atomic (the Registry) or
// a mutex-guarded map of published snapshot strings, so the daemon's
// control loop publishes and the server thread reads without data races
// (proven TSan-clean by tests/test_expose.cpp).
//
// Malformed traffic is answered, never fatal: non-GET -> 405, unknown path
// -> 404, an oversized or unparsable request line -> 400. Without start()
// no thread exists and the process pays nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace minergy::obs {

class ExpositionServer {
 public:
  // Request-line cap: anything longer is a 400, never a buffer risk.
  static constexpr std::size_t kMaxRequestBytes = 4096;

  static ExpositionServer& instance();

  // Binds 127.0.0.1:port (0 = kernel-chosen ephemeral port) and starts the
  // serving thread. Returns false and fills *error on failure (port in
  // use, out of fds, or the server is already running).
  bool start(int port, std::string* error);

  // Stops the serving thread and closes the socket. Idempotent; safe to
  // call when never started.
  void stop();

  bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  // The bound port (valid while running; 0 otherwise).
  int port() const { return port_.load(std::memory_order_relaxed); }

  // Publishes a snapshot document served verbatim at `path` (e.g.
  // "/health"). Replaces any previous document. Callers pay only a mutex
  // and a string copy even when the server is not running; gate on
  // running() in hot paths. `status` is the HTTP status the document is
  // served with (200 or 503 — a degraded daemon publishes its health with
  // 503 so load balancers stop routing to it; /metrics stays 200 always),
  // and `extra_headers` is zero or more complete "Name: value\r\n" lines
  // (e.g. "Retry-After: 5\r\n") inserted into the response head.
  void publish(const std::string& path, const std::string& content_type,
               std::string body, int status = 200,
               std::string extra_headers = std::string());

  // The Prometheus text exposition of the global Registry (what GET
  // /metrics serves). Public so tests and tools can render without a
  // socket.
  static std::string render_prometheus();

  // Testing hook: total requests answered since start().
  std::int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  ExpositionServer() = default;

  void serve_loop();
  void handle_connection(int fd);

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<int> port_{0};
  std::atomic<std::int64_t> requests_{0};
  int listen_fd_ = -1;
  std::thread thread_;

  struct Doc {
    std::string content_type;
    std::string body;
    int status = 200;
    std::string extra_headers;  // raw "Name: value\r\n" lines
  };

  mutable std::mutex mu_;  // guards docs_
  std::map<std::string, Doc> docs_;
};

// Translates one internal instrument name to its Prometheus family name:
// every character outside [a-zA-Z0-9_:] becomes '_'. A '{' starts a label
// set that is kept verbatim (see obs::labeled_name in metrics.h).
std::string prometheus_name(std::string_view raw);

}  // namespace minergy::obs
