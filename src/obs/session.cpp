#include "obs/session.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/eventlog.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/json.h"

namespace minergy::obs {

Session::Session(const util::Cli& cli, std::string default_name)
    : name_(std::move(default_name)) {
  trace_path_ = cli.get("trace", std::string());
  metrics_ = cli.get("metrics", false) || cli.get("verbose", false);
  if (cli.has("perf-record")) {
    perf_path_ = cli.get("perf-record", std::string());
    // Bare --perf-record (boolean form) selects the conventional filename.
    if (perf_path_.empty() || perf_path_ == "true") {
      perf_path_ = "BENCH_" + name_ + ".json";
    }
  }
  const bool listen = cli.has("listen");
  const bool event_log = cli.has("event-log");
  if (!trace_path_.empty() || metrics_ || !perf_path_.empty() || listen ||
      event_log) {
    set_enabled(true);
    start_us_ = util::monotonic_micros();
  }
  if (!trace_path_.empty()) Tracer::instance().start();
  if (event_log) {
    const std::string path = cli.get("event-log", std::string());
    const std::int64_t max_bytes =
        static_cast<std::int64_t>(cli.get("event-log-max-kb", 8192.0)) * 1024;
    std::string error;
    if (path.empty() || path == "true" ||
        !EventLog::instance().open(path, max_bytes, &error)) {
      throw std::runtime_error("--event-log: cannot open " +
                               (path.empty() ? "(missing FILE)" : error));
    }
    event_log_ = true;
  }
  if (listen) {
    std::string error;
    if (!ExpositionServer::instance().start(cli.get("listen", 0), &error)) {
      throw std::runtime_error("--listen: cannot bind: " + error);
    }
    exposing_ = true;
    const int port = ExpositionServer::instance().port();
    std::fprintf(stderr, "[obs] exposition: http://127.0.0.1:%d/metrics\n",
                 port);
    const std::string port_file = cli.get("port-file", std::string());
    if (!port_file.empty()) {
      // Write-then-rename so a polling script never reads a torn port.
      const std::string tmp = port_file + ".tmp";
      std::ofstream out(tmp, std::ios::trunc);
      out << port << '\n';
      out.close();
      if (!out || std::rename(tmp.c_str(), port_file.c_str()) != 0) {
        ExpositionServer::instance().stop();
        throw std::runtime_error("--port-file: cannot write " + port_file);
      }
    }
  }
}

int Session::listen_port() const {
  return exposing_ ? ExpositionServer::instance().port() : 0;
}

std::string Session::perf_record_json() const {
  util::JsonWriter w(1);
  w.begin_object();
  w.kv("schema", "minergy.perf_record.v1");
  w.kv("bench", name_);
  w.kv("wall_seconds", (util::monotonic_micros() - start_us_) * 1e-6);
  w.key("counters").begin_object();
  for (const auto& [name, v] : Registry::instance().counter_snapshot()) {
    if (v != 0) w.kv(name, v);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : Registry::instance().gauge_snapshot()) {
    if (v != 0.0) w.kv(name, v);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : Registry::instance().histogram_snapshot()) {
    if (h.count == 0) continue;
    w.key(name).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("p50", h.p50);
    w.kv("p95", h.p95);
    w.kv("p99", h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

void Session::finish() {
  if (finished_) return;
  finished_ = true;
  if (exposing_) {
    ExpositionServer::instance().stop();
    exposing_ = false;
  }
  if (event_log_) EventLog::instance().close();
  if (!trace_path_.empty()) {
    Tracer::instance().stop();
    if (Tracer::instance().write_file(trace_path_)) {
      std::fprintf(stderr, "[obs] trace: %s (%zu events)\n",
                   trace_path_.c_str(), Tracer::instance().event_count());
    } else {
      std::fprintf(stderr, "[obs] error: cannot write trace to %s\n",
                   trace_path_.c_str());
    }
  }
  if (!perf_path_.empty()) {
    std::ofstream out(perf_path_);
    if (out) {
      out << perf_record_json() << '\n';
      std::fprintf(stderr, "[obs] perf record: %s\n", perf_path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] error: cannot write perf record to %s\n",
                   perf_path_.c_str());
    }
  }
  if (metrics_) {
    std::printf("\n== observability counters ==\n%s",
                Registry::instance().to_table().c_str());
  }
}

Session::~Session() { finish(); }

}  // namespace minergy::obs
