#include "obs/session.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/json.h"

namespace minergy::obs {

Session::Session(const util::Cli& cli, std::string default_name)
    : name_(std::move(default_name)) {
  trace_path_ = cli.get("trace", std::string());
  metrics_ = cli.get("metrics", false) || cli.get("verbose", false);
  if (cli.has("perf-record")) {
    perf_path_ = cli.get("perf-record", std::string());
    // Bare --perf-record (boolean form) selects the conventional filename.
    if (perf_path_.empty() || perf_path_ == "true") {
      perf_path_ = "BENCH_" + name_ + ".json";
    }
  }
  if (!trace_path_.empty() || metrics_ || !perf_path_.empty()) {
    set_enabled(true);
    start_us_ = util::monotonic_micros();
  }
  if (!trace_path_.empty()) Tracer::instance().start();
}

void Session::finish() {
  if (finished_) return;
  finished_ = true;
  if (!trace_path_.empty()) {
    Tracer::instance().stop();
    if (Tracer::instance().write_file(trace_path_)) {
      std::fprintf(stderr, "[obs] trace: %s (%zu events)\n",
                   trace_path_.c_str(), Tracer::instance().event_count());
    } else {
      std::fprintf(stderr, "[obs] error: cannot write trace to %s\n",
                   trace_path_.c_str());
    }
  }
  if (!perf_path_.empty()) {
    util::JsonWriter w(1);
    w.begin_object();
    w.kv("schema", "minergy.perf_record.v1");
    w.kv("bench", name_);
    w.kv("wall_seconds", (util::monotonic_micros() - start_us_) * 1e-6);
    w.key("counters").begin_object();
    for (const auto& [name, v] : Registry::instance().counter_snapshot()) {
      if (v != 0) w.kv(name, v);
    }
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, v] : Registry::instance().gauge_snapshot()) {
      if (v != 0.0) w.kv(name, v);
    }
    w.end_object();
    w.end_object();
    std::ofstream out(perf_path_);
    if (out) {
      out << w.str() << '\n';
      std::fprintf(stderr, "[obs] perf record: %s\n", perf_path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] error: cannot write perf record to %s\n",
                   perf_path_.c_str());
    }
  }
  if (metrics_) {
    std::printf("\n== observability counters ==\n%s",
                Registry::instance().to_table().c_str());
  }
}

Session::~Session() { finish(); }

}  // namespace minergy::obs
