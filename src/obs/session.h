// CLI glue: one RAII object gives any tool or bench driver the standard
// observability flags.
//
//   int main(int argc, char** argv) {
//     const util::Cli cli(argc, argv);
//     obs::Session session(cli, "table1_baseline");
//     ...
//   }  // <- outputs written / printed here
//
// Flags understood:
//   --trace=FILE        capture Chrome-trace spans, write FILE at exit
//   --metrics           print the final counter snapshot as an aligned table
//   --verbose           alias for --metrics
//   --perf-record[=F]   write a BENCH_<name>.json perf record (wall time +
//                       counter snapshot) at exit; F overrides the filename
//
// Any of the flags enables metric collection for the process; with none of
// them the session is inert and instrumentation stays on its disabled fast
// path.
#pragma once

#include <string>

#include "util/cli.h"

namespace minergy::obs {

class Session {
 public:
  Session(const util::Cli& cli, std::string default_name);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool verbose() const { return metrics_; }
  bool tracing() const { return !trace_path_.empty(); }

  // Writes all requested outputs now (idempotent; the destructor calls it).
  void finish();

 private:
  std::string name_;
  std::string trace_path_;
  std::string perf_path_;
  bool metrics_ = false;
  bool finished_ = false;
  double start_us_ = 0.0;
};

}  // namespace minergy::obs
