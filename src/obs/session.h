// CLI glue: one RAII object gives any tool or bench driver the standard
// observability flags.
//
//   int main(int argc, char** argv) {
//     const util::Cli cli(argc, argv);
//     obs::Session session(cli, "table1_baseline");
//     ...
//   }  // <- outputs written / printed here
//
// Flags understood:
//   --trace=FILE        capture Chrome-trace spans, write FILE at exit
//   --metrics           print the final counter snapshot as an aligned table
//   --verbose           alias for --metrics
//   --perf-record[=F]   write a BENCH_<name>.json perf record (wall time +
//                       counter snapshot) at exit; F overrides the filename
//   --listen=PORT       serve GET /metrics (Prometheus text format),
//                       /health and /jobs over HTTP on 127.0.0.1:PORT while
//                       the process runs; PORT 0 picks an ephemeral port
//   --port-file=FILE    write the bound exposition port to FILE (how
//                       scripts discover a --listen=0 port)
//   --event-log=FILE    append-only JSONL structured event log (schema
//                       minergy.event.v1; see obs/eventlog.h)
//   --event-log-max-kb=N  event-log segment size cap before rotation to
//                       FILE.1 (default 8192)
//
// Any of the flags enables metric collection for the process; with none of
// them the session is inert and instrumentation stays on its disabled fast
// path — no exposition thread, no open log, no clocks.
#pragma once

#include <string>

#include "util/cli.h"

namespace minergy::obs {

class Session {
 public:
  // Throws std::runtime_error when --listen is given but the port cannot
  // be bound, or --event-log cannot be opened: a daemon asked to be
  // observable must not silently run blind.
  Session(const util::Cli& cli, std::string default_name);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool verbose() const { return metrics_; }
  bool tracing() const { return !trace_path_.empty(); }
  // True when the embedded HTTP exposition server is running.
  bool exposing() const { return exposing_; }
  // Bound exposition port (0 when not exposing).
  int listen_port() const;

  // The perf-record document (schema minergy.perf_record.v1) as of now.
  // Used by the daemon's periodic snapshot flush as well as finish().
  std::string perf_record_json() const;
  // The --perf-record output path ("" when the flag is absent).
  const std::string& perf_path() const { return perf_path_; }

  // Writes all requested outputs now (idempotent; the destructor calls it).
  // Also stops the exposition server and closes the event log.
  void finish();

 private:
  std::string name_;
  std::string trace_path_;
  std::string perf_path_;
  bool metrics_ = false;
  bool exposing_ = false;
  bool event_log_ = false;
  bool finished_ = false;
  double start_us_ = 0.0;
};

}  // namespace minergy::obs
