#include "obs/expose.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/check.h"

namespace minergy::obs {

namespace {

// Full-buffer send; a scraper that stops reading mid-response is its own
// problem (SO_SNDTIMEO bounds the stall).
void send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer gone; nothing to salvage
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const std::string& reason,
                          const std::string& content_type,
                          std::string_view body,
                          const std::string& extra_headers = std::string()) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\n" + extra_headers + "Connection: close\r\n\r\n";
  out.append(body);
  return out;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

void append_number(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

// Splits "family{labels}" at the '{'; labels (when present) include the
// braces and are emitted verbatim after the translated family name.
void split_labels(std::string_view raw, std::string_view& family,
                  std::string_view& labels) {
  const std::size_t brace = raw.find('{');
  if (brace == std::string_view::npos) {
    family = raw;
    labels = {};
  } else {
    family = raw.substr(0, brace);
    labels = raw.substr(brace);
  }
}

// "# TYPE fam kind" once per family (instruments sharing a family via
// labels sort adjacently, so tracking the previous family suffices).
void type_line(std::string& out, std::string& last_family,
               const std::string& family, const char* kind) {
  if (family == last_family) return;
  last_family = family;
  out += "# TYPE " + family + " " + kind + "\n";
}

}  // namespace

std::string prometheus_name(std::string_view raw) {
  std::string_view family, labels;
  split_labels(raw, family, labels);
  std::string out;
  out.reserve(raw.size());
  for (const char c : family) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  out.append(labels);
  return out;
}

std::string ExpositionServer::render_prometheus() {
  std::string out;
  out.reserve(4096);
  std::string last_family;
  for (const auto& [raw, v] : Registry::instance().counter_snapshot()) {
    const std::string name = prometheus_name(raw);
    std::string_view family, labels;
    split_labels(name, family, labels);
    type_line(out, last_family, std::string(family), "counter");
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  }
  for (const auto& [raw, v] : Registry::instance().gauge_snapshot()) {
    const std::string name = prometheus_name(raw);
    std::string_view family, labels;
    split_labels(name, family, labels);
    type_line(out, last_family, std::string(family), "gauge");
    out += name;
    out += ' ';
    append_number(out, v);
    out += '\n';
  }
  for (const auto& [raw, h] : Registry::instance().histogram_snapshot()) {
    const std::string name = prometheus_name(raw);
    std::string_view family_sv, labels_sv;
    split_labels(name, family_sv, labels_sv);
    const std::string family(family_sv);
    const std::string labels(labels_sv);
    // `labels` is "{k=\"v\"}" or empty; the le label merges into the set.
    const std::string label_prefix =
        labels.empty() ? "{le=\""
                       : labels.substr(0, labels.size() - 1) + ",le=\"";
    type_line(out, last_family, family, "histogram");
    std::int64_t cumulative = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t n = h.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      cumulative += n;
      out += family + "_bucket" + label_prefix;
      append_number(out, Histogram::bucket_upper_bound(b));
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += family + "_bucket" + label_prefix + "+Inf\"} " +
           std::to_string(h.count) + '\n';
    out += family + "_sum" + labels + ' ';
    append_number(out, h.sum);
    out += '\n';
    out += family + "_count" + labels + ' ' + std::to_string(h.count) + '\n';
    // Approximate quantiles (bucket upper bounds) as sibling gauges — a
    // histogram family cannot legally carry quantile series. An empty
    // histogram (freshly started daemon) has no meaningful quantiles, so the
    // siblings are omitted rather than risking unparseable values.
    if (h.count == 0) continue;
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"_p50", h.p50},
          {"_p95", h.p95},
          {"_p99", h.p99}}) {
      const std::string qfam = family + suffix;
      type_line(out, last_family, qfam, "gauge");
      out += qfam + labels + ' ';
      append_number(out, q);
      out += '\n';
    }
  }
  return out;
}

ExpositionServer& ExpositionServer::instance() {
  static ExpositionServer* s = new ExpositionServer();  // outlives statics
  return *s;
}

bool ExpositionServer::start(int port, std::string* error) {
  if (running_.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "exposition server already running";
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_.store(static_cast<int>(ntohs(bound.sin_port)),
              std::memory_order_relaxed);
  stop_requested_.store(false, std::memory_order_relaxed);
  requests_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void ExpositionServer::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_relaxed);
  port_.store(0, std::memory_order_relaxed);
}

void ExpositionServer::publish(const std::string& path,
                               const std::string& content_type,
                               std::string body, int status,
                               std::string extra_headers) {
  const std::lock_guard<std::mutex> lock(mu_);
  docs_[path] =
      Doc{content_type, std::move(body), status, std::move(extra_headers)};
}

// Poll with a short timeout so stop() is honored promptly without signals
// or self-pipes; the accept itself can then never block.
void ExpositionServer::serve_loop() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, /*timeout_ms=*/50);
    if (r <= 0 || (p.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void ExpositionServer::handle_connection(int fd) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  counter("expose.requests").add();
  // A wedged or malicious client must not hang the (single) serving
  // thread: bound both directions.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  // Read until the end of the request line (we ignore headers; HTTP/1.0,
  // Connection: close). Over the cap without a newline -> 400.
  std::string req;
  char buf[1024];
  while (req.find('\n') == std::string::npos &&
         req.size() <= kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t eol = req.find('\n');
  if (eol == std::string::npos || eol > kMaxRequestBytes) {
    counter("expose.bad_requests").add();
    send_all(fd, http_response(400, "Bad Request", "text/plain",
                               "unterminated or oversized request line\n"));
    return;
  }
  std::string line = req.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    counter("expose.bad_requests").add();
    send_all(fd, http_response(400, "Bad Request", "text/plain",
                               "malformed request line\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    counter("expose.bad_requests").add();
    send_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                               "only GET is supported\n"));
    return;
  }
  if (path == "/metrics") {
    counter("expose.scrapes").add();
    send_all(fd, http_response(200, "OK",
                               "text/plain; version=0.0.4; charset=utf-8",
                               render_prometheus()));
    return;
  }
  Doc doc;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = docs_.find(path);
    if (it == docs_.end()) {
      counter("expose.not_found").add();
      send_all(fd, http_response(404, "Not Found", "text/plain",
                                 "unknown path " + path + "\n"));
      return;
    }
    doc = it->second;
  }
  counter("expose.scrapes").add();
  send_all(fd, http_response(doc.status, reason_phrase(doc.status),
                             doc.content_type, doc.body, doc.extra_headers));
}

}  // namespace minergy::obs
