#include "obs/eventlog.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/json.h"

namespace minergy::obs {

namespace {

double unix_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EventLog& EventLog::instance() {
  static EventLog* log = new EventLog();  // leaked: outlives static dtors
  return *log;
}

bool EventLog::open(const std::string& path, std::int64_t max_bytes,
                    std::string* error) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // A pre-existing log belongs to an earlier run: rotate it aside so this
  // segment starts at seq 1 and the verifier's pairing oracle holds within
  // one daemon lifetime.
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && st.st_size > 0) {
    std::rename(path.c_str(), (path + ".1").c_str());
  }
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = path + ": " + std::strerror(errno);
    }
    return false;
  }
  fd_ = fd;
  path_ = path;
  max_bytes_ = max_bytes > 0 ? max_bytes : 8 * 1024 * 1024;
  seq_ = 0;
  bytes_ = 0;
  armed_.store(true, std::memory_order_relaxed);
  return true;
}

void EventLog::close() {
  armed_.store(false, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void EventLog::rotate_locked() {
  ::close(fd_);
  fd_ = -1;
  std::rename(path_.c_str(), (path_ + ".1").c_str());
  const int fd =
      ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_TRUNC, 0644);
  if (fd < 0) {
    // Storage refused the fresh segment; disarm rather than drop lines
    // silently one by one.
    armed_.store(false, std::memory_order_relaxed);
    return;
  }
  fd_ = fd;
  bytes_ = 0;
  counter("obs.eventlog.rotations").add();
}

void EventLog::write_line_locked(const std::string& line) {
  if (fd_ < 0) return;
  // One write() per line: O_APPEND makes concurrent appends atomic and a
  // SIGKILL can only fall between lines, never inside one.
  const ssize_t n = ::write(fd_, line.data(), line.size());
  if (n == static_cast<ssize_t>(line.size())) {
    bytes_ += n;
  } else {
    counter("obs.eventlog.write_failures").add();
  }
}

std::string EventLog::format_locked(const Event& e) {
  util::JsonWriter w(0);
  w.begin_object();
  w.kv("schema", kEventSchema);
  w.kv("seq", ++seq_);
  w.kv("t_unix", unix_seconds());
  w.kv("severity", e.severity.empty() ? "info" : e.severity);
  w.kv("kind", e.kind);
  if (!e.job.empty()) w.kv("job", e.job);
  if (!e.circuit.empty()) w.kv("circuit", e.circuit);
  if (e.attempt > 0) {
    w.kv("attempt", e.attempt);
    if (!e.job.empty()) {
      w.kv("span", e.job + "#" + std::to_string(e.attempt));
    }
  }
  if (!e.detail.empty()) w.kv("detail", e.detail);
  for (const auto& [k, v] : e.num) w.kv(k, v);
  w.end_object();
  return w.str() + "\n";
}

void EventLog::emit(const Event& e) {
  if (!armed()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  std::string line = format_locked(e);
  if (bytes_ + static_cast<std::int64_t>(line.size()) > max_bytes_ &&
      bytes_ > 0) {
    rotate_locked();
    if (fd_ < 0) return;
    Event rotated;
    rotated.kind = "log_rotated";
    rotated.detail = "size cap " + std::to_string(max_bytes_) + " bytes";
    // The rotation marker takes the next seq; re-render the pending event
    // so its seq stays above it.
    --seq_;
    const std::string marker = format_locked(rotated);
    write_line_locked(marker);
    line = format_locked(e);
  }
  write_line_locked(line);
  counter("obs.eventlog.events").add();
}

}  // namespace minergy::obs
