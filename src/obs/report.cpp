#include "obs/report.h"

#include <utility>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/json.h"

namespace minergy::obs {

void RunReport::add_point(TrajectoryPoint p) {
  p.iteration = static_cast<int>(trajectory.size());
  trajectory.push_back(std::move(p));
}

std::vector<double> RunReport::accepted_energies() const {
  std::vector<double> out;
  for (const TrajectoryPoint& p : trajectory) {
    if (p.accepted) out.push_back(p.energy);
  }
  return out;
}

std::string RunReport::to_json(int indent) const {
  util::JsonWriter w(indent);
  w.begin_object();
  w.kv("schema", "minergy.run_report.v1");
  w.kv("optimizer", optimizer).kv("circuit", circuit);
  w.kv("feasible", feasible);
  w.kv("vdd", vdd).kv("vts_primary", vts_primary);
  w.kv("energy_total", energy_total);
  w.kv("static_energy", static_energy);
  w.kv("dynamic_energy", dynamic_energy);
  w.kv("critical_delay", critical_delay);
  w.kv("runtime_seconds", runtime_seconds);
  w.kv("circuit_evaluations", circuit_evaluations);
  w.kv("tier", tier);
  w.kv("truncated", truncated).kv("truncation_reason", truncation_reason);

  w.key("trajectory").begin_array();
  for (const TrajectoryPoint& p : trajectory) {
    w.begin_object();
    w.kv("i", p.iteration).kv("phase", p.phase);
    w.kv("vdd", p.vdd).kv("vts", p.vts);
    w.kv("energy", p.energy).kv("critical_delay", p.critical_delay);
    w.kv("feasible", p.feasible).kv("accepted", p.accepted);
    w.end_object();
  }
  w.end_array();

  w.key("tiers").begin_array();
  for (const TierRecord& t : tiers) {
    w.begin_object();
    w.kv("tier", t.tier).kv("wall_seconds", t.wall_seconds);
    w.kv("selected", t.selected).kv("failure_reason", t.failure_reason);
    if (!t.certificate_status.empty()) {
      w.kv("certificate_status", t.certificate_status);
      w.kv("certificate_detail", t.certificate_detail);
    }
    w.end_object();
  }
  w.end_array();

  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.kv(name, v);
  w.end_object();

  w.end_object();
  return w.str();
}

RunReport RunReport::from_json(const std::string& text,
                               const std::string& source_name) {
  const util::JsonValue root = util::JsonValue::parse(text, source_name);
  if (!root.is_object()) {
    throw util::ParseError("run report must be a JSON object", source_name, 1);
  }
  const std::string schema = root.get_string("schema", "");
  if (schema != "minergy.run_report.v1") {
    throw util::ParseError("unknown run-report schema '" + schema + "'",
                           source_name, 1);
  }

  RunReport r;
  r.optimizer = root.get_string("optimizer", "");
  r.circuit = root.get_string("circuit", "");
  r.feasible = root.get_bool("feasible", false);
  r.vdd = root.get_number("vdd", 0.0);
  r.vts_primary = root.get_number("vts_primary", 0.0);
  r.energy_total = root.get_number("energy_total", 0.0);
  r.static_energy = root.get_number("static_energy", 0.0);
  r.dynamic_energy = root.get_number("dynamic_energy", 0.0);
  r.critical_delay = root.get_number("critical_delay", 0.0);
  r.runtime_seconds = root.get_number("runtime_seconds", 0.0);
  r.circuit_evaluations =
      static_cast<std::int64_t>(root.get_number("circuit_evaluations", 0.0));
  r.tier = root.get_string("tier", "");
  r.truncated = root.get_bool("truncated", false);
  r.truncation_reason = root.get_string("truncation_reason", "");

  if (root.has("trajectory")) {
    for (const util::JsonValue& jp : root.at("trajectory").items()) {
      TrajectoryPoint p;
      p.iteration = static_cast<int>(jp.get_number("i", 0.0));
      p.phase = jp.get_string("phase", "");
      p.vdd = jp.get_number("vdd", 0.0);
      p.vts = jp.get_number("vts", 0.0);
      p.energy = jp.get_number("energy", 0.0);
      p.critical_delay = jp.get_number("critical_delay", 0.0);
      p.feasible = jp.get_bool("feasible", false);
      p.accepted = jp.get_bool("accepted", false);
      r.trajectory.push_back(std::move(p));
    }
  }
  if (root.has("tiers")) {
    for (const util::JsonValue& jt : root.at("tiers").items()) {
      TierRecord t;
      t.tier = jt.get_string("tier", "");
      t.wall_seconds = jt.get_number("wall_seconds", 0.0);
      t.selected = jt.get_bool("selected", false);
      t.failure_reason = jt.get_string("failure_reason", "");
      t.certificate_status = jt.get_string("certificate_status", "");
      t.certificate_detail = jt.get_string("certificate_detail", "");
      r.tiers.push_back(std::move(t));
    }
  }
  if (root.has("counters")) {
    for (const auto& [name, jv] : root.at("counters").members()) {
      r.counters[name] = jv.as_int();
    }
  }
  return r;
}

CounterDelta::CounterDelta() : enabled_at_start_(enabled()) {
  if (enabled_at_start_) start_ = Registry::instance().counter_snapshot();
}

void CounterDelta::finish(RunReport* report) const {
  if (!enabled_at_start_ || !enabled()) return;
  for (const auto& [name, end] : Registry::instance().counter_snapshot()) {
    const auto it = start_.find(name);
    const std::int64_t delta = end - (it == start_.end() ? 0 : it->second);
    if (delta != 0) report->counters[name] = delta;
  }
}

}  // namespace minergy::obs
