// Append-only JSONL structured event log (schema minergy.event.v1).
//
// Counters say how often; the event log says what happened and in what
// order. The service daemon appends one JSON object per line at every job
// state transition, retry/backoff decision, breaker trip / half-open
// probe, ENOSPC degradation, certification verdict and SLO violation, so a
// post-mortem can replay exactly what the daemon did — including runs that
// ended in SIGKILL: each line is a single O_APPEND write() that either
// lands whole or not at all, so a killed daemon never leaves a torn line.
//
// Line shape (field order fixed; optional fields omitted when unset):
//
//   {"schema":"minergy.event.v1","seq":17,"t_unix":1754650000.123,
//    "severity":"info","kind":"job_claimed","job":"j-...","circuit":"s27",
//    "attempt":2,"span":"j-...#2","detail":"...","backoff_s":0.5}
//
//   seq       monotonically increasing per log, strictly (the verifier's
//             ordering oracle); continues across size-cap rotation
//   span      correlation id <job>#<attempt>, matching the attempt journal
//             in the spool job file
//   severity  debug | info | warn | error
//
// Rotation: opening an existing log rotates it to <path>.1 and starts a
// fresh segment at seq 1; exceeding the size cap mid-run rotates the same
// way, logs a `log_rotated` event, and keeps counting seq — so a rotated
// segment is recognizable by first seq > 1 and trace_check relaxes its
// claimed/done pairing check accordingly.
//
// The log is process-global (obs::EventLog::instance()), armed by
// obs::Session's --event-log flag, and a disarmed emit is one relaxed
// atomic load — the instrumentation stays in the service code at zero cost
// for every process that never opens a log.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace minergy::obs {

inline constexpr const char kEventSchema[] = "minergy.event.v1";

struct Event {
  std::string kind;              // e.g. "job_claimed", "breaker_trip"
  std::string severity = "info"; // debug | info | warn | error
  std::string job;               // job id (omitted when empty)
  std::string circuit;           // circuit name (omitted when empty)
  int attempt = 0;               // 1-based; omitted when 0
  std::string detail;            // free-form context (omitted when empty)
  // Extra numeric fields appended verbatim, e.g. {"backoff_s", 0.5}.
  std::vector<std::pair<std::string, double>> num;
};

class EventLog {
 public:
  static EventLog& instance();

  // Opens (creating or rotating) `path` and arms the log. max_bytes caps a
  // segment; exceeding it rotates to <path>.1. Returns false with *error
  // set when the file cannot be opened (the log stays disarmed).
  bool open(const std::string& path, std::int64_t max_bytes,
            std::string* error);

  // Flushes and disarms. Idempotent.
  void close();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Appends one event (no-op when disarmed). Thread-safe.
  void emit(const Event& e);

  std::int64_t last_seq() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return seq_;
  }
  std::string path() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return path_;
  }

 private:
  EventLog() = default;
  void rotate_locked();
  void write_line_locked(const std::string& line);
  std::string format_locked(const Event& e);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::string path_;
  std::int64_t max_bytes_ = 8 * 1024 * 1024;
  std::int64_t seq_ = 0;
  std::int64_t bytes_ = 0;
  int fd_ = -1;
};

// Convenience: emit into the global log when armed; otherwise one relaxed
// atomic load. Instrumentation sites use this directly.
inline void event(const Event& e) {
  EventLog& log = EventLog::instance();
  if (log.armed()) log.emit(e);
}

}  // namespace minergy::obs
