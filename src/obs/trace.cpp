#include "obs/trace.h"

#include <fstream>
#include <functional>
#include <thread>
#include <utility>

#include "util/clock.h"
#include "util/json.h"

namespace minergy::obs {
namespace {

std::uint64_t current_tid() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();  // leaked: spans may outlive static dtors
  return *t;
}

void Tracer::start() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  instants_.clear();
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  active_.store(false, std::memory_order_relaxed);
  events_.clear();
  instants_.clear();
}

void Tracer::record(std::string name, std::string category, double ts_us,
                    double dur_us) {
  if (!active()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{std::move(name), std::move(category), ts_us,
                               dur_us, current_tid()});
}

void Tracer::instant(std::string name, std::string category) {
  if (!active()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  instants_.push_back(TraceEvent{std::move(name), std::move(category),
                                 util::monotonic_micros(), 0.0,
                                 current_tid()});
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size() + instants_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  util::JsonWriter w(1);
  w.begin_object();
  w.key("traceEvents").begin_array();
  auto emit = [&w](const TraceEvent& e, const char* phase, bool with_dur) {
    w.begin_object();
    w.kv("name", e.name).kv("cat", e.category).kv("ph", phase);
    w.kv("ts", e.ts_us);
    if (with_dur) w.kv("dur", e.dur_us);
    // tid is a hash; fold it into a small positive integer for the viewer.
    w.kv("pid", std::int64_t{1})
        .kv("tid", static_cast<std::int64_t>(e.tid % 1000003));
    if (!with_dur) w.kv("s", "t");  // instant scope: thread
    w.end_object();
  };
  for (const TraceEvent& e : events_) emit(e, "X", true);
  for (const TraceEvent& e : instants_) emit(e, "i", false);
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return out.good();
}

Span::Span(const char* name, const char* category)
    : name_(name),
      category_(category),
      start_us_(0.0),
      active_(Tracer::instance().active()) {
  if (active_) start_us_ = util::monotonic_micros();
}

Span::~Span() {
  if (!active_) return;
  const double end_us = util::monotonic_micros();
  Tracer::instance().record(name_, category_, start_us_, end_us - start_us_);
}

}  // namespace minergy::obs
