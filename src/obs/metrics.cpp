#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "util/table.h"

namespace minergy::obs {

void Histogram::record(double v) {
  if (!enabled()) return;
  int b = 0;
  if (std::isfinite(v) && v > 0.0) {
    // ilogb(v) is floor(log2(v)); the bucket upper bound is 2^(b-kOriginExp),
    // so a value in (2^e, 2^(e+1)] belongs to bucket e+1+kOriginExp. Exact
    // powers of two sit on their bucket's upper bound.
    const int e = std::ilogb(v);
    const bool exact_pow2 = std::ldexp(1.0, e) == v;
    b = e + kOriginExp + (exact_pow2 ? 0 : 1);
    if (b < 0) b = 0;
    if (b >= kBuckets) b = kBuckets - 1;
  } else if (!std::isfinite(v)) {
    b = kBuckets - 1;
  }
  buckets_[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Histogram::count() const {
  std::int64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

double Histogram::bucket_upper_bound(int b) {
  return std::ldexp(1.0, b - kOriginExp);
}

double Histogram::sum() const {
  double s = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t n = buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (n == 0) continue;
    // Bucket midpoint: 0.75 * upper bound (geometric-ish center of (u/2, u]).
    s += static_cast<double>(n) * 0.75 * bucket_upper_bound(b);
  }
  return s;
}

double Histogram::percentile(double p) const {
  const std::int64_t total = count();
  // Degenerate inputs must not leak NaN into the exposition gauges: an empty
  // histogram (freshly started daemon) and a non-positive/NaN quantile both
  // render as 0; quantiles above 1 saturate at the top bucket.
  if (total == 0 || !(p > 0.0)) return 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(total);
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (static_cast<double>(seen) >= target) return bucket_upper_bound(b);
  }
  return bucket_upper_bound(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

std::map<std::string, std::int64_t> Registry::counter_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c.value();
  return out;
}

std::map<std::string, double> Registry::gauge_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g.value();
  return out;
}

std::map<std::string, HistogramSnapshot> Registry::histogram_snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      snap.buckets[static_cast<std::size_t>(b)] = h.bucket_count(b);
    }
    snap.count = h.count();
    snap.sum = h.sum();
    snap.p50 = h.percentile(0.50);
    snap.p95 = h.percentile(0.95);
    snap.p99 = h.percentile(0.99);
    out[name] = snap;
  }
  return out;
}

std::string labeled_name(std::string_view family, std::string_view key,
                         std::string_view value) {
  std::string out(family);
  out += '{';
  out += key;
  out += "=\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"}";
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second.reset();
  for (auto& kv : gauges_) kv.second.reset();
  for (auto& kv : histograms_) kv.second.reset();
}

std::string Registry::to_table() const {
  const std::lock_guard<std::mutex> lock(mu_);
  util::Table table({"metric", "kind", "value", "p50", "p95"});
  for (const auto& [name, c] : counters_) {
    if (c.value() == 0) continue;
    table.begin_row().add(name).add("counter").add(
        std::to_string(c.value())).add("-").add("-");
  }
  for (const auto& [name, g] : gauges_) {
    if (g.value() == 0.0) continue;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", g.value());
    table.begin_row().add(name).add("gauge").add(buf).add("-").add("-");
  }
  for (const auto& [name, h] : histograms_) {
    if (h.count() == 0) continue;
    char p50[32], p95[32];
    std::snprintf(p50, sizeof p50, "%.3g", h.percentile(0.50));
    std::snprintf(p95, sizeof p95, "%.3g", h.percentile(0.95));
    table.begin_row()
        .add(name)
        .add("histogram")
        .add(std::to_string(h.count()))
        .add(p50)
        .add(p95);
  }
  return table.to_text();
}

}  // namespace minergy::obs
