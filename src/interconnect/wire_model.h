// Stochastic wire-length estimation from Rent's rule.
//
// The paper (Section 2) derives per-net interconnect loads from "a complete
// stochastic wire-length distribution model, derived from first principles
// through recursive application of Rent's rule and the principle of
// conservation of I/O's" (Davis, De, Meindl 1996). We implement the
// closed-form a-priori distribution for an N-gate square placement:
//
//   i(l) ∝ (l^3/3 − 2√N·l^2 + 2N·l) · l^(2p−4)      1 ≤ l < √N
//   i(l) ∝ (1/6)·(2√N − l)^3 · l^(2p−4)             √N ≤ l ≤ 2√N
//
// (l in gate pitches, p = Rent exponent), numerically normalized into a pmf.
// Each net's length is a deterministic quantile of this distribution keyed
// on the driver's id, so experiments are reproducible without a placement.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.h"
#include "tech/technology.h"

namespace minergy::interconnect {

// Abstract per-net electrical loads. Implementations: the stochastic
// Rent's-rule WireModel below (the paper's a-priori estimate) and
// place::PlacedWireModel (half-perimeter lengths from an actual placement,
// used to validate the a-priori model).
class WireLoads {
 public:
  virtual ~WireLoads() = default;

  // Trunk length of the net driven by `driver` (m).
  virtual double net_length(netlist::GateId driver) const = 0;
  // Total routed length including fanout branches (m).
  virtual double routed_length(netlist::GateId driver) const = 0;
  // Total distributed wire capacitance of the net (F).
  virtual double net_cap(netlist::GateId driver) const = 0;
  // Trunk wire resistance (Ohm).
  virtual double net_res(netlist::GateId driver) const = 0;
  // Time of flight down the trunk (s).
  virtual double flight_time(netlist::GateId driver) const = 0;
};

class WireLengthDistribution {
 public:
  // num_gates >= 1; rent_p in (0, 1).
  WireLengthDistribution(std::size_t num_gates, double rent_p);

  // Longest modeled length, in gate pitches (= floor(2*sqrt(N)), >= 1).
  int max_length() const { return static_cast<int>(pmf_.size()); }
  // P(length == l), l in [1, max_length()].
  double pmf(int l) const;
  // Mean length in gate pitches.
  double mean() const { return mean_; }
  // Inverse CDF: smallest l with CDF(l) >= q.
  int quantile(double q) const;

 private:
  std::vector<double> pmf_;  // pmf_[l-1] = P(length = l)
  std::vector<double> cdf_;
  double mean_ = 0.0;
};

// Per-net electrical loads for a specific netlist in a specific technology.
// Nets are identified by their driver gate id.
class WireModel final : public WireLoads {
 public:
  WireModel(const tech::Technology& tech, const netlist::Netlist& nl);

  // Trunk length of the net driven by `driver` (m).
  double net_length(netlist::GateId driver) const override;
  // Total routed length including fanout branches (m): the trunk plus a
  // sublinear Steiner growth of 40% of the trunk per extra branch.
  double routed_length(netlist::GateId driver) const override;
  // Total distributed wire capacitance of the net (F).
  double net_cap(netlist::GateId driver) const override;
  // Trunk wire resistance (Ohm).
  double net_res(netlist::GateId driver) const override;
  // Time of flight down the trunk (s).
  double flight_time(netlist::GateId driver) const override;

  const WireLengthDistribution& distribution() const { return dist_; }

 private:
  const netlist::Netlist& nl_;
  WireLengthDistribution dist_;
  double pitch_;          // m
  double cap_per_len_;    // F/m
  double res_per_len_;    // Ohm/m
  double inv_velocity_;   // s/m
  std::vector<double> trunk_length_;  // per gate id, m
};

}  // namespace minergy::interconnect
