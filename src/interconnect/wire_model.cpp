#include "interconnect/wire_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace minergy::interconnect {

WireLengthDistribution::WireLengthDistribution(std::size_t num_gates,
                                               double rent_p) {
  MINERGY_CHECK(num_gates >= 1);
  MINERGY_CHECK(rent_p > 0.0 && rent_p < 1.0);
  const double n = static_cast<double>(num_gates);
  const double sqrt_n = std::sqrt(n);
  const int lmax = std::max(1, static_cast<int>(std::floor(2.0 * sqrt_n)));

  pmf_.resize(static_cast<std::size_t>(lmax));
  double total = 0.0;
  for (int l = 1; l <= lmax; ++l) {
    const double ld = static_cast<double>(l);
    const double power = std::pow(ld, 2.0 * rent_p - 4.0);
    double density;
    if (ld < sqrt_n) {
      density = (ld * ld * ld / 3.0 - 2.0 * sqrt_n * ld * ld + 2.0 * n * ld) *
                power;
    } else {
      const double r = 2.0 * sqrt_n - ld;
      density = r * r * r / 6.0 * power;
    }
    density = std::max(density, 0.0);
    pmf_[static_cast<std::size_t>(l - 1)] = density;
    total += density;
  }
  MINERGY_CHECK_MSG(total > 0.0, "degenerate wire-length distribution");

  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    pmf_[i] /= total;
    acc += pmf_[i];
    cdf_[i] = acc;
    mean_ += static_cast<double>(i + 1) * pmf_[i];
  }
  cdf_.back() = 1.0;  // guard against rounding
}

double WireLengthDistribution::pmf(int l) const {
  MINERGY_CHECK(l >= 1 && l <= max_length());
  return pmf_[static_cast<std::size_t>(l - 1)];
}

int WireLengthDistribution::quantile(double q) const {
  MINERGY_CHECK(q >= 0.0 && q <= 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), q);
  return static_cast<int>(it - cdf_.begin()) + 1;
}

WireModel::WireModel(const tech::Technology& tech, const netlist::Netlist& nl)
    : nl_(nl),
      dist_(std::max<std::size_t>(nl.num_combinational(), 4),
            tech.rent_exponent),
      pitch_(tech.gate_pitch),
      cap_per_len_(tech.wire_cap_per_len),
      res_per_len_(tech.wire_res_per_len),
      inv_velocity_(1.0 / tech.flight_velocity) {
  MINERGY_CHECK(nl.finalized());
  trunk_length_.resize(nl.size(), 0.0);
  // Deterministic per-net quantile: mix the driver id with the netlist size
  // so different circuits see decorrelated samples.
  const std::uint64_t salt = 0x5851f42d4c957f2dULL ^ nl.size();
  for (const netlist::Gate& g : nl.gates()) {
    const double u = util::hash_unit(salt + 0x9e3779b97f4a7c15ULL * (g.id + 1));
    trunk_length_[g.id] =
        static_cast<double>(dist_.quantile(u)) * pitch_;
  }
}

double WireModel::net_length(netlist::GateId driver) const {
  MINERGY_CHECK(driver < trunk_length_.size());
  return trunk_length_[driver];
}

double WireModel::routed_length(netlist::GateId driver) const {
  const int branches = nl_.gate(driver).branch_count();
  return net_length(driver) * (1.0 + 0.4 * static_cast<double>(branches - 1));
}

double WireModel::net_cap(netlist::GateId driver) const {
  return routed_length(driver) * cap_per_len_;
}

double WireModel::net_res(netlist::GateId driver) const {
  return net_length(driver) * res_per_len_;
}

double WireModel::flight_time(netlist::GateId driver) const {
  return net_length(driver) * inv_velocity_;
}

}  // namespace minergy::interconnect
