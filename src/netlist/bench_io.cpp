#include "netlist/bench_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace minergy::netlist {
namespace {

struct Statement {
  enum class Kind { kInput, kOutput, kAssign } kind;
  std::string lhs;                  // signal name
  GateType type = GateType::kBuf;   // for kAssign
  std::vector<std::string> args;    // fanin names for kAssign
  int line_no = 0;
};

// Parses "HEAD(arg1, arg2)" -> {HEAD, args}; returns false if no match.
bool parse_call(std::string_view text, std::string* head,
                std::vector<std::string>* args) {
  const auto open = text.find('(');
  const auto close = text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return false;
  }
  *head = std::string(util::trim(text.substr(0, open)));
  args->clear();
  const std::string_view inner = text.substr(open + 1, close - open - 1);
  for (const auto& piece : util::split(inner, ',')) {
    const auto trimmed = util::trim(piece);
    if (!trimmed.empty()) args->emplace_back(trimmed);
  }
  return true;
}

}  // namespace

Netlist parse_bench(std::istream& in, const std::string& name) {
  std::vector<Statement> stmts;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto body = util::trim(line);
    if (body.empty()) continue;

    Statement st;
    st.line_no = line_no;
    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x).
      std::string head;
      std::vector<std::string> args;
      if (!parse_call(body, &head, &args) || args.size() != 1) {
        throw util::ParseError("expected INPUT(x) or OUTPUT(x)", name,
                               line_no);
      }
      const std::string u = util::to_upper(head);
      if (u == "INPUT") {
        st.kind = Statement::Kind::kInput;
      } else if (u == "OUTPUT") {
        st.kind = Statement::Kind::kOutput;
      } else {
        throw util::ParseError("unknown directive '" + head + "'", name,
                               line_no);
      }
      st.lhs = args[0];
    } else {
      st.kind = Statement::Kind::kAssign;
      st.lhs = std::string(util::trim(body.substr(0, eq)));
      std::string head;
      if (!parse_call(body.substr(eq + 1), &head, &st.args)) {
        throw util::ParseError("expected 'name = GATE(a, b, ...)'", name,
                               line_no);
      }
      const auto type = gate_type_from_string(head);
      if (!type || *type == GateType::kInput) {
        throw util::ParseError("unknown gate type '" + head + "'", name,
                               line_no);
      }
      st.type = *type;
      if (st.lhs.empty()) {
        throw util::ParseError("missing signal name before '='", name,
                               line_no);
      }
      if (st.args.empty()) {
        throw util::ParseError("gate '" + st.lhs + "' has no fanins", name,
                               line_no);
      }
    }
    stmts.push_back(std::move(st));
  }

  // Pass 1: declare all signals. Structural errors (duplicate definitions)
  // are reported as ParseError with the offending line, not as a bare
  // NetlistError that loses the file position.
  Netlist nl(name);
  for (const Statement& st : stmts) {
    if (st.kind != Statement::Kind::kOutput &&
        nl.find(st.lhs) != kInvalidGate) {
      throw util::ParseError("duplicate definition of signal '" + st.lhs + "'",
                             name, st.line_no);
    }
    switch (st.kind) {
      case Statement::Kind::kInput:
        nl.add_input(st.lhs);
        break;
      case Statement::Kind::kAssign:
        if (st.type == GateType::kDff) {
          nl.add_dff(st.lhs);
        } else {
          nl.add_gate(st.type, st.lhs);
        }
        break;
      case Statement::Kind::kOutput:
        break;  // resolved in pass 2
    }
  }

  // Pass 2: connect fanins and outputs.
  for (const Statement& st : stmts) {
    if (st.kind == Statement::Kind::kOutput) {
      const GateId id = nl.find(st.lhs);
      if (id == kInvalidGate) {
        throw util::ParseError("OUTPUT references undefined signal '" +
                                   st.lhs + "'",
                               name, st.line_no);
      }
      nl.mark_output(id);
      continue;
    }
    if (st.kind != Statement::Kind::kAssign) continue;
    std::vector<GateId> fanins;
    fanins.reserve(st.args.size());
    for (const std::string& arg : st.args) {
      const GateId f = nl.find(arg);
      if (f == kInvalidGate) {
        throw util::ParseError(
            "gate '" + st.lhs + "' references undefined signal '" + arg + "'",
            name, st.line_no);
      }
      fanins.push_back(f);
    }
    nl.set_fanins(nl.find(st.lhs), std::move(fanins));
  }

  nl.finalize();
  return nl;
}

Netlist parse_bench_string(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  return parse_bench(in, name);
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::ParseError("cannot open file", path, 0);
  return parse_bench(in, std::filesystem::path(path).stem().string());
}

std::string to_bench(const Netlist& nl) {
  MINERGY_CHECK(nl.finalized());
  std::ostringstream os;
  os << "# " << nl.name() << " — written by minergy\n";
  for (GateId id : nl.primary_inputs()) {
    os << "INPUT(" << nl.gate(id).name << ")\n";
  }
  for (GateId id : nl.primary_outputs()) {
    os << "OUTPUT(" << nl.gate(id).name << ")\n";
  }
  os << '\n';
  auto emit = [&](const Gate& g) {
    os << g.name << " = " << to_string(g.type) << '(';
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) os << ", ";
      os << nl.gate(g.fanins[i]).name;
    }
    os << ")\n";
  };
  for (GateId id : nl.dffs()) emit(nl.gate(id));
  for (GateId id : nl.combinational()) emit(nl.gate(id));
  return os.str();
}

void write_bench_file(const Netlist& nl, const std::string& path) {
  std::ofstream out(path);
  MINERGY_CHECK_MSG(static_cast<bool>(out), "cannot open output file " + path);
  out << to_bench(nl);
}

}  // namespace minergy::netlist
