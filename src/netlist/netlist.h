// Gate-level netlist graph.
//
// Every gate drives exactly one net, identified with the gate's id.
// Sequential elements (DFFs) are modeled as cut points: the Q output is a
// combinational source and the D input a combinational sink, so all timing,
// activity and optimization run on the combinational core between
// {PIs, DFF.Q} and {POs, DFF.D} — exactly the paper's "random logic
// network of N static CMOS gates".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.h"

namespace minergy::netlist {

// Thrown on structural problems: duplicate definitions, dangling fanins,
// bad arity, combinational cycles. Derives from std::invalid_argument so
// pre-existing catch sites keep working.
class NetlistError : public std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

using GateId = std::uint32_t;
inline constexpr GateId kInvalidGate = static_cast<GateId>(-1);

struct Gate {
  GateId id = kInvalidGate;
  std::string name;
  GateType type = GateType::kInput;
  std::vector<GateId> fanins;
  std::vector<GateId> fanouts;      // gates whose fanin lists contain us
  bool is_primary_output = false;   // net is also a primary output
  int level = -1;                   // combinational level (sources = 0)

  int fanin_count() const { return static_cast<int>(fanins.size()); }

  // Number of driven branches: fanout gates plus one for a primary-output
  // pin. This is the f_oi of the paper (defined >= 1; sinks with no
  // observer still present one unit of load for budgeting purposes).
  int branch_count() const {
    const int n = static_cast<int>(fanouts.size()) + (is_primary_output ? 1 : 0);
    return n > 0 ? n : 1;
  }
};

class Netlist {
 public:
  explicit Netlist(std::string name = "netlist");

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Construction --------------------------------------------------------
  GateId add_input(const std::string& name);
  GateId add_gate(GateType type, const std::string& name,
                  std::vector<GateId> fanins = {});
  GateId add_dff(const std::string& name, GateId d = kInvalidGate);
  void set_fanins(GateId id, std::vector<GateId> fanins);
  void mark_output(GateId id);

  // Validates arities, resolves fanouts, topologically orders the
  // combinational core and computes levels. Throws NetlistError on
  // dangling references, bad arity, or a combinational cycle. Must be called
  // before any analysis accessor below.
  void finalize();
  bool finalized() const { return finalized_; }

  // --- Accessors -----------------------------------------------------------
  std::size_t size() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_.at(id); }
  const std::vector<Gate>& gates() const { return gates_; }

  // Gate ids by role (available after finalize()).
  const std::vector<GateId>& primary_inputs() const { return inputs_; }
  const std::vector<GateId>& primary_outputs() const { return outputs_; }
  const std::vector<GateId>& dffs() const { return dffs_; }
  // Logic gates the optimizer sizes, in topological order (fanins first).
  const std::vector<GateId>& combinational() const { return topo_; }
  std::size_t num_combinational() const { return topo_.size(); }

  // Sources of the combinational core: PIs and DFF outputs.
  const std::vector<GateId>& sources() const { return sources_; }
  // Sinks: gates feeding POs or DFF D-pins (ids of the driving gates).
  const std::vector<GateId>& sink_drivers() const { return sink_drivers_; }

  // Combinational level (0 at sources) and logic depth (max level).
  int level(GateId id) const { return gates_.at(id).level; }
  int depth() const { return depth_; }

  // Logic gates bucketed by combinational level, ascending, empty buckets
  // dropped; each bucket sorted by id. Gates in one bucket depend only on
  // earlier buckets, so a bucket may be evaluated in any order (or in
  // parallel) without changing any per-gate value — the basis of the
  // levelized parallel STA and width search.
  const std::vector<std::vector<GateId>>& level_groups() const {
    return level_groups_;
  }

  // Name lookup; returns kInvalidGate if absent.
  GateId find(const std::string& name) const;

  bool is_source(GateId id) const {
    const GateType t = gates_.at(id).type;
    return t == GateType::kInput || t == GateType::kDff;
  }

 private:
  GateId new_gate(GateType type, const std::string& name);

  std::string name_;
  std::vector<Gate> gates_;
  std::unordered_map<std::string, GateId> by_name_;
  std::vector<GateId> inputs_, outputs_, dffs_;
  std::vector<GateId> topo_;
  std::vector<std::vector<GateId>> level_groups_;
  std::vector<GateId> sources_, sink_drivers_;
  int depth_ = 0;
  bool finalized_ = false;
};

}  // namespace minergy::netlist
