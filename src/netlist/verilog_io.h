// Structural-Verilog subset reader.
//
// Supported grammar (one module per file; gate-primitive instances only):
//
//   module NAME (port, port, ...);
//     input  a, b;          // or input a; input b;
//     output y;
//     wire   w1, w2;
//     nand  u1 (y, a, b);   // first terminal is the output
//     dff   r1 (q, d);
//   endmodule
//
// Primitives: and, nand, or, nor, xor, xnor, not, buf, dff.
// Comments: // line and /* block */.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace minergy::netlist {

Netlist parse_verilog(std::istream& in, const std::string& name = "verilog");
Netlist parse_verilog_string(const std::string& text,
                             const std::string& name = "verilog");
Netlist parse_verilog_file(const std::string& path);

}  // namespace minergy::netlist
