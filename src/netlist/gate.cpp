#include "netlist/gate.h"

#include "util/check.h"
#include "util/strings.h"

namespace minergy::netlist {

std::string_view to_string(GateType type) {
  switch (type) {
    case GateType::kInput: return "INPUT";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kDff: return "DFF";
  }
  return "?";
}

std::optional<GateType> gate_type_from_string(std::string_view s) {
  const std::string u = util::to_upper(util::trim(s));
  if (u == "INPUT") return GateType::kInput;
  if (u == "BUF" || u == "BUFF" || u == "BUFFER") return GateType::kBuf;
  if (u == "NOT" || u == "INV" || u == "INVERTER") return GateType::kNot;
  if (u == "AND") return GateType::kAnd;
  if (u == "NAND") return GateType::kNand;
  if (u == "OR") return GateType::kOr;
  if (u == "NOR") return GateType::kNor;
  if (u == "XOR") return GateType::kXor;
  if (u == "XNOR") return GateType::kXnor;
  if (u == "DFF" || u == "FF" || u == "SDFF") return GateType::kDff;
  return std::nullopt;
}

bool is_combinational(GateType type) {
  return type != GateType::kInput && type != GateType::kDff;
}

bool is_inverting(GateType type) {
  switch (type) {
    case GateType::kNot:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

int min_fanin(GateType type) {
  switch (type) {
    case GateType::kInput: return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff:
      return 1;
    default:
      return 2;
  }
}

int max_fanin(GateType type) {
  switch (type) {
    case GateType::kInput: return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff:
      return 1;
    default:
      return 0;  // unbounded
  }
}

bool evaluate(GateType type, std::span<const bool> inputs) {
  switch (type) {
    case GateType::kInput:
    case GateType::kDff:
    case GateType::kBuf: {
      MINERGY_CHECK(inputs.size() == 1);
      return inputs[0];
    }
    case GateType::kNot: {
      MINERGY_CHECK(inputs.size() == 1);
      return !inputs[0];
    }
    case GateType::kAnd:
    case GateType::kNand: {
      MINERGY_CHECK(!inputs.empty());
      bool all = true;
      for (bool v : inputs) all = all && v;
      return type == GateType::kAnd ? all : !all;
    }
    case GateType::kOr:
    case GateType::kNor: {
      MINERGY_CHECK(!inputs.empty());
      bool any = false;
      for (bool v : inputs) any = any || v;
      return type == GateType::kOr ? any : !any;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      MINERGY_CHECK(!inputs.empty());
      bool parity = false;
      for (bool v : inputs) parity = parity != v;
      return type == GateType::kXor ? parity : !parity;
    }
  }
  MINERGY_CHECK_MSG(false, "unreachable gate type");
  return false;
}

}  // namespace minergy::netlist
