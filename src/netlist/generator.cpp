#include "netlist/generator.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace minergy::netlist {

void GeneratorSpec::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("GeneratorSpec: ") + what);
  };
  require(num_inputs >= 1, "need at least one input");
  require(num_outputs >= 1, "need at least one output");
  require(num_dffs >= 0, "negative DFF count");
  require(num_gates >= 1, "need at least one gate");
  require(depth >= 1, "depth must be >= 1");
  require(num_gates >= depth, "num_gates must be >= depth");
  require(frac_single_input >= 0 && frac_single_input < 1, "bad NOT share");
  require(frac_xor >= 0 && frac_xor < 1, "bad XOR share");
  require(max_fanin >= 2, "max_fanin must be >= 2");
}

Netlist generate_random_logic(const GeneratorSpec& spec) {
  spec.validate();
  util::Rng rng(spec.seed);
  Netlist nl(spec.name);

  // Sources: PIs and DFF Q-pins.
  std::vector<GateId> sources;
  for (int i = 0; i < spec.num_inputs; ++i) {
    sources.push_back(nl.add_input("pi" + std::to_string(i)));
  }
  std::vector<GateId> dff_ids;
  for (int i = 0; i < spec.num_dffs; ++i) {
    const GateId q = nl.add_dff("ff" + std::to_string(i));
    dff_ids.push_back(q);
    sources.push_back(q);
  }

  // Assign each gate a level in [1, depth]: one gate per level first (to
  // guarantee the target depth), then the rest with a mild bias toward the
  // shallow half — real random logic tapers toward the outputs.
  std::vector<int> gate_level(static_cast<std::size_t>(spec.num_gates));
  for (int i = 0; i < spec.depth; ++i) gate_level[static_cast<std::size_t>(i)] = i + 1;
  for (int i = spec.depth; i < spec.num_gates; ++i) {
    const double u = rng.uniform();
    gate_level[static_cast<std::size_t>(i)] =
        1 + static_cast<int>(static_cast<double>(spec.depth) *
                             std::min(0.999, u * u * 0.35 + u * 0.65));
  }
  std::sort(gate_level.begin(), gate_level.end());

  // nodes_at_level[l] lists nets available at level l (sources at 0).
  std::vector<std::vector<GateId>> nodes_at_level(
      static_cast<std::size_t>(spec.depth) + 1);
  nodes_at_level[0] = sources;

  // Track how often each net is already used as a fanin so selection can
  // prefer unobserved nets — keeps the dangling-gate (promoted-PO) count
  // close to the requested num_outputs, like real synthesized logic.
  std::vector<int> use_count(
      static_cast<std::size_t>(spec.num_gates) + sources.size() + 8, 0);
  auto pick_from_level = [&](int level) -> GateId {
    const auto& pool = nodes_at_level[static_cast<std::size_t>(level)];
    MINERGY_CHECK(!pool.empty());
    // Two tries: prefer a so-far-unobserved net.
    GateId cand = pool[rng.uniform_index(pool.size())];
    if (use_count[cand] > 0) {
      const GateId second = pool[rng.uniform_index(pool.size())];
      if (use_count[second] == 0) cand = second;
    }
    return cand;
  };
  // Pick a node strictly below `level`, geometrically biased to be close.
  auto pick_below = [&](int level) -> GateId {
    int l = level - 1;
    while (l > 0 && rng.bernoulli(0.45)) --l;
    // The level is guaranteed non-empty for l == level-1; walk down/up to a
    // non-empty one otherwise.
    while (nodes_at_level[static_cast<std::size_t>(l)].empty()) --l;
    return pick_from_level(l);
  };

  std::vector<GateId> logic_ids;
  logic_ids.reserve(static_cast<std::size_t>(spec.num_gates));
  for (int i = 0; i < spec.num_gates; ++i) {
    const int level = gate_level[static_cast<std::size_t>(i)];
    // Fanin count: 1 with the NOT share, otherwise 2..max_fanin with a
    // strong preference for 2-input gates.
    int k;
    if (rng.bernoulli(spec.frac_single_input)) {
      k = 1;
    } else {
      k = 2;
      while (k < spec.max_fanin && rng.bernoulli(0.25)) ++k;
    }
    GateType type;
    if (k == 1) {
      type = rng.bernoulli(0.75) ? GateType::kNot : GateType::kBuf;
    } else if (rng.bernoulli(spec.frac_xor)) {
      type = rng.bernoulli(0.5) ? GateType::kXor : GateType::kXnor;
      k = 2;  // keep XORs 2-input, as synthesized logic overwhelmingly is
    } else {
      const double u = rng.uniform();
      type = u < 0.35   ? GateType::kNand
             : u < 0.70 ? GateType::kNor
             : u < 0.85 ? GateType::kAnd
                        : GateType::kOr;
    }

    // First fanin comes from level-1 to make the level assignment exact;
    // the rest from anywhere below, without duplicates.
    std::vector<GateId> fanins;
    fanins.push_back(pick_from_level(level - 1));
    int attempts = 0;
    while (static_cast<int>(fanins.size()) < k && attempts < 64) {
      const GateId cand = pick_below(level);
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end()) {
        fanins.push_back(cand);
      }
      ++attempts;
    }
    if (static_cast<int>(fanins.size()) < 2 && k >= 2) {
      // Tiny design (not enough distinct nets); degrade to an inverter.
      type = GateType::kNot;
    }
    if (type == GateType::kNot || type == GateType::kBuf) {
      fanins.resize(1);
    }
    for (GateId f : fanins) ++use_count[f];
    const GateId id =
        nl.add_gate(type, "g" + std::to_string(i), std::move(fanins));
    nodes_at_level[static_cast<std::size_t>(level)].push_back(id);
    logic_ids.push_back(id);
  }

  // Connect DFF D-pins to gates in the top third of levels.
  const int top_from = std::max(1, 2 * spec.depth / 3);
  for (GateId q : dff_ids) {
    int l = top_from + static_cast<int>(rng.uniform_index(
                           static_cast<std::uint64_t>(spec.depth - top_from + 1)));
    while (nodes_at_level[static_cast<std::size_t>(l)].empty()) --l;
    const GateId d = pick_from_level(l);
    ++use_count[d];
    nl.set_fanins(q, {d});
  }

  // Track use counts so we can find dangling nets and unused sources.
  std::vector<int> uses(nl.size(), 0);
  for (const Gate& g : nl.gates()) {
    for (GateId f : g.fanins) ++uses[f];
  }

  // Unused sources: append them as extra fanins to random multi-input gates
  // (level ordering stays valid because sources are level 0).
  std::vector<GateId> multi;
  for (GateId id : logic_ids) {
    if (nl.gate(id).fanin_count() >= 2 &&
        nl.gate(id).fanin_count() < spec.max_fanin) {
      multi.push_back(id);
    }
  }
  for (GateId s : sources) {
    if (uses[s] > 0 || multi.empty()) continue;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const GateId host = multi[rng.uniform_index(multi.size())];
      auto fanins = nl.gate(host).fanins;
      if (std::find(fanins.begin(), fanins.end(), s) != fanins.end()) continue;
      if (static_cast<int>(fanins.size()) >= spec.max_fanin) continue;
      fanins.push_back(s);
      nl.set_fanins(host, std::move(fanins));
      ++uses[s];
      break;
    }
  }

  // Recompute uses after the source patch.
  std::fill(uses.begin(), uses.end(), 0);
  for (const Gate& g : nl.gates()) {
    for (GateId f : g.fanins) ++uses[f];
  }

  // Dangling logic gates observe nothing: promote them to primary outputs.
  std::vector<GateId> dangling;
  for (GateId id : logic_ids) {
    if (uses[id] == 0) dangling.push_back(id);
  }
  for (GateId id : dangling) nl.mark_output(id);
  // Top up to the requested PO count with the deepest driven gates.
  int po_count = static_cast<int>(dangling.size());
  for (auto it = logic_ids.rbegin(); it != logic_ids.rend() && po_count < spec.num_outputs;
       ++it) {
    if (std::find(dangling.begin(), dangling.end(), *it) == dangling.end()) {
      nl.mark_output(*it);
      ++po_count;
    }
  }

  nl.finalize();
  return nl;
}

}  // namespace minergy::netlist
