// Structural netlist transforms.
//
// The paper's delay model charges multi-input gates a series-stack penalty
// (worst-case drive divided by fanin count) and its budgeting weights gates
// by fanout; these transforms let the experiments probe both assumptions:
//
//  * decompose_to_two_input — balanced 2-input tree decomposition of every
//    wide gate (trades stack factor for logic depth),
//  * buffer_high_fanout    — inserts buffers so no net drives more than
//    `max_fanout` branch pins (trades load for depth).
//
// Both produce a new, finalized netlist that is logically equivalent to the
// input (verified exhaustively in the test suite).
#pragma once

#include "netlist/netlist.h"

namespace minergy::netlist {

// Rewrites every gate with more than two fanins into a balanced tree of
// 2-input gates. AND/OR/XOR trees are direct; NAND/NOR/XNOR keep the
// inversion only at the root (inner nodes are AND/OR/XOR). 1- and 2-input
// gates pass through unchanged.
Netlist decompose_to_two_input(const Netlist& nl);

// Splits nets with more than `max_fanout` sinks by inserting a tree of BUF
// gates so every level (the original driver included) drives at most
// `max_fanout` gate pins. Primary-output pins stay on the original driver.
Netlist buffer_high_fanout(const Netlist& nl, int max_fanout);

// Removes logic that cannot reach any primary output — including registers
// whose outputs only feed dead logic (computed to a fixed point, so dead
// feedback loops disappear too). Primary inputs are interface and always
// kept. The observable behavior (POs, live DFF next-state functions) is
// unchanged.
Netlist sweep_dead_logic(const Netlist& nl);

}  // namespace minergy::netlist
