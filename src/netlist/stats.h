// Descriptive statistics of a netlist (used by the surrogate generator's
// calibration tests and the `netlist_info` tool).
#pragma once

#include <array>
#include <string>

#include "netlist/netlist.h"

namespace minergy::netlist {

struct NetlistStats {
  std::size_t num_gates = 0;    // combinational gates
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::size_t num_dffs = 0;
  int depth = 0;
  double avg_fanin = 0.0;
  double avg_fanout = 0.0;  // branch count over logic gates
  int max_fanout = 0;
  // Gate-type histogram indexed by static_cast<size_t>(GateType).
  std::array<std::size_t, 10> type_counts{};

  std::string to_string() const;
};

NetlistStats compute_stats(const Netlist& nl);

}  // namespace minergy::netlist
