#include "netlist/stats.h"

#include <sstream>

#include "util/check.h"

namespace minergy::netlist {

NetlistStats compute_stats(const Netlist& nl) {
  MINERGY_CHECK(nl.finalized());
  NetlistStats s;
  s.num_gates = nl.num_combinational();
  s.num_inputs = nl.primary_inputs().size();
  s.num_outputs = nl.primary_outputs().size();
  s.num_dffs = nl.dffs().size();
  s.depth = nl.depth();

  double fanin_sum = 0.0, fanout_sum = 0.0;
  for (GateId id : nl.combinational()) {
    const Gate& g = nl.gate(id);
    fanin_sum += g.fanin_count();
    fanout_sum += g.branch_count();
    s.max_fanout = std::max(s.max_fanout, g.branch_count());
    s.type_counts[static_cast<std::size_t>(g.type)]++;
  }
  if (s.num_gates > 0) {
    s.avg_fanin = fanin_sum / static_cast<double>(s.num_gates);
    s.avg_fanout = fanout_sum / static_cast<double>(s.num_gates);
  }
  return s;
}

std::string NetlistStats::to_string() const {
  std::ostringstream os;
  os << "gates=" << num_gates << " depth=" << depth << " PI=" << num_inputs
     << " PO=" << num_outputs << " DFF=" << num_dffs << " avg_fanin=";
  os.precision(3);
  os << avg_fanin << " avg_fanout=" << avg_fanout
     << " max_fanout=" << max_fanout;
  return os.str();
}

}  // namespace minergy::netlist
