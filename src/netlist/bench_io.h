// ISCAS .bench reader/writer.
//
// Grammar (case-insensitive keywords, '#' comments):
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(in1, in2, ...)      GATE in {AND,NAND,OR,NOR,XOR,XNOR,
//                                            NOT,BUF,DFF}
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace minergy::netlist {

// Parse from a stream/string/file. The returned netlist is finalized.
// Throws util::ParseError on malformed input and std::invalid_argument on
// semantic errors (undefined signals, cycles).
Netlist parse_bench(std::istream& in, const std::string& name = "bench");
Netlist parse_bench_string(const std::string& text,
                           const std::string& name = "bench");
Netlist parse_bench_file(const std::string& path);

// Serialize a finalized netlist back to .bench text.
std::string to_bench(const Netlist& nl);
void write_bench_file(const Netlist& nl, const std::string& path);

}  // namespace minergy::netlist
