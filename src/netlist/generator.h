// Seeded random-logic-network generator.
//
// Used to synthesize ISCAS-89 *surrogate* circuits: networks that match a
// target gate count, depth, I/O and register count, and realistic fanin /
// fanout statistics. The paper's optimizer consumes only network topology
// and activity, so statistically matched surrogates exercise identical code
// paths (see DESIGN.md, "Substitutions").
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace minergy::netlist {

struct GeneratorSpec {
  std::string name = "random";
  int num_inputs = 8;
  int num_outputs = 8;   // minimum; dangling gates are promoted to POs
  int num_dffs = 0;
  int num_gates = 100;   // combinational gates
  int depth = 10;        // target combinational depth (levels of logic)
  std::uint64_t seed = 1;

  double frac_single_input = 0.15;  // NOT/BUF share
  double frac_xor = 0.05;           // XOR/XNOR share of multi-input gates
  int max_fanin = 4;

  void validate() const;  // throws std::invalid_argument
};

// Generates and finalizes a netlist per the spec. Deterministic in the seed.
// Guarantees: combinational depth == spec.depth (when num_gates >= depth),
// every source drives at least one gate, every gate reaches a PO or DFF.
Netlist generate_random_logic(const GeneratorSpec& spec);

}  // namespace minergy::netlist
