#include "netlist/verilog_io.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace minergy::netlist {
namespace {

// Remove // and /* */ comments, preserving newlines for diagnostics.
std::string strip_comments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLine, kBlock } state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          ++i;
        } else {
          out += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
          out += c;
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out += c;
        }
        break;
    }
  }
  return out;
}

struct VerilogStatement {
  std::string text;
  int line_no;
};

// Split on ';', tracking the line number where each statement starts.
std::vector<VerilogStatement> split_statements(const std::string& text) {
  std::vector<VerilogStatement> stmts;
  std::string cur;
  int line = 1;
  int start_line = 1;
  // start_line is pinned at the statement's first non-whitespace character
  // (leading newlines accumulate in `cur`, so "is cur empty" is not it).
  bool seen_content = false;
  for (char c : text) {
    if (c == ';') {
      stmts.push_back({cur, start_line});
      cur.clear();
      seen_content = false;
      start_line = line;
    } else {
      if (!seen_content && !std::isspace(static_cast<unsigned char>(c))) {
        start_line = line;
        seen_content = true;
      }
      if (c == '\n') ++line;
      cur += c;
    }
  }
  const auto tail = util::trim(cur);
  if (!tail.empty()) stmts.push_back({std::string(tail), start_line});
  return stmts;
}

// "head (a, b, c)" -> head, {a,b,c}; also handles instance names:
// "nand u1 (y, a, b)" callers split the keyword off first.
std::vector<std::string> parse_terminal_list(std::string_view s,
                                             const std::string& file,
                                             int line_no) {
  const auto open = s.find('(');
  const auto close = s.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    throw util::ParseError("expected '(terminal, ...)'", file, line_no);
  }
  std::vector<std::string> out;
  for (const auto& piece : util::split(s.substr(open + 1, close - open - 1),
                                       ',')) {
    const auto t = util::trim(piece);
    if (t.empty()) {
      throw util::ParseError("empty terminal in port list", file, line_no);
    }
    out.emplace_back(t);
  }
  return out;
}

}  // namespace

Netlist parse_verilog(std::istream& in, const std::string& name) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string clean = strip_comments(buffer.str());

  std::string module_name = name;
  std::vector<std::string> input_names, output_names;
  struct Instance {
    GateType type;
    std::vector<std::string> terminals;  // [out, in...]
    int line_no;
  };
  std::vector<Instance> instances;
  bool in_module = false;
  bool ended = false;

  for (const auto& [raw, line_no] : split_statements(clean)) {
    std::string body(util::trim(raw));
    // `endmodule` may be glued to the last statement (it has no ';').
    const auto endpos = body.find("endmodule");
    if (endpos != std::string::npos) {
      ended = true;
      body = std::string(util::trim(body.substr(0, endpos)));
    }
    if (body.empty()) continue;
    const auto tokens = util::split_ws(body);
    MINERGY_CHECK(!tokens.empty());
    const std::string keyword = util::to_lower(tokens[0]);

    if (keyword == "module") {
      if (in_module) throw util::ParseError("nested module", name, line_no);
      in_module = true;
      if (tokens.size() < 2) {
        throw util::ParseError("module without a name", name, line_no);
      }
      // Name may be glued to the port list: "module top(a,b);"
      const auto paren = tokens[1].find('(');
      module_name = tokens[1].substr(0, paren);
      continue;  // port list carries no direction info; ignore
    }
    if (!in_module) {
      throw util::ParseError("statement outside module", name, line_no);
    }
    if (keyword == "input" || keyword == "output" || keyword == "wire") {
      // Everything after the keyword is a comma-separated name list.
      // (Materialize as std::string: body.substr() is a temporary, so a
      // string_view of it would dangle past this statement.)
      const std::string rest(util::trim(body.substr(tokens[0].size())));
      for (const auto& piece : util::split(rest, ',')) {
        const auto n = util::trim(piece);
        if (n.empty()) continue;
        if (keyword == "input") {
          if (std::find(input_names.begin(), input_names.end(),
                        std::string(n)) != input_names.end()) {
            throw util::ParseError("duplicate input '" + std::string(n) + "'",
                                   name, line_no);
          }
          input_names.emplace_back(n);
        } else if (keyword == "output") {
          output_names.emplace_back(n);
        }
        // wires carry no information we need
      }
      continue;
    }
    const auto type = gate_type_from_string(keyword);
    if (!type || *type == GateType::kInput) {
      throw util::ParseError("unknown primitive '" + keyword + "'", name,
                             line_no);
    }
    auto terminals = parse_terminal_list(body, name, line_no);
    if (terminals.size() < 2) {
      throw util::ParseError("primitive needs an output and >= 1 input", name,
                             line_no);
    }
    instances.push_back({*type, std::move(terminals), line_no});
  }
  if (in_module && !ended) {
    throw util::ParseError("missing endmodule", name, 0);
  }

  Netlist nl(module_name);
  for (const auto& n : input_names) nl.add_input(n);
  for (const auto& inst : instances) {
    if (nl.find(inst.terminals[0]) != kInvalidGate) {
      throw util::ParseError(
          "duplicate driver for signal '" + inst.terminals[0] + "'", name,
          inst.line_no);
    }
    if (inst.type == GateType::kDff) {
      nl.add_dff(inst.terminals[0]);
    } else {
      nl.add_gate(inst.type, inst.terminals[0]);
    }
  }
  for (const auto& inst : instances) {
    std::vector<GateId> fanins;
    for (std::size_t i = 1; i < inst.terminals.size(); ++i) {
      const GateId f = nl.find(inst.terminals[i]);
      if (f == kInvalidGate) {
        throw util::ParseError("undriven signal '" + inst.terminals[i] + "'",
                               name, inst.line_no);
      }
      fanins.push_back(f);
    }
    nl.set_fanins(nl.find(inst.terminals[0]), std::move(fanins));
  }
  for (const auto& n : output_names) {
    const GateId id = nl.find(n);
    if (id == kInvalidGate) {
      throw util::ParseError("output '" + n + "' is never driven", name, 0);
    }
    nl.mark_output(id);
  }
  nl.finalize();
  return nl;
}

Netlist parse_verilog_string(const std::string& text,
                             const std::string& name) {
  std::istringstream in(text);
  return parse_verilog(in, name);
}

Netlist parse_verilog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::ParseError("cannot open file", path, 0);
  return parse_verilog(in, std::filesystem::path(path).stem().string());
}

}  // namespace minergy::netlist
