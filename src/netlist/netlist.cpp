#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace minergy::netlist {

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

GateId Netlist::new_gate(GateType type, const std::string& name) {
  MINERGY_CHECK_MSG(!finalized_, "netlist already finalized");
  if (by_name_.count(name)) {
    throw NetlistError("duplicate gate name: " + name);
  }
  Gate g;
  g.id = static_cast<GateId>(gates_.size());
  g.name = name;
  g.type = type;
  by_name_.emplace(name, g.id);
  gates_.push_back(std::move(g));
  return gates_.back().id;
}

GateId Netlist::add_input(const std::string& name) {
  const GateId id = new_gate(GateType::kInput, name);
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_gate(GateType type, const std::string& name,
                         std::vector<GateId> fanins) {
  if (!is_combinational(type)) {
    throw NetlistError("add_gate requires a logic gate type");
  }
  const GateId id = new_gate(type, name);
  gates_[id].fanins = std::move(fanins);
  return id;
}

GateId Netlist::add_dff(const std::string& name, GateId d) {
  const GateId id = new_gate(GateType::kDff, name);
  if (d != kInvalidGate) gates_[id].fanins = {d};
  dffs_.push_back(id);
  return id;
}

void Netlist::set_fanins(GateId id, std::vector<GateId> fanins) {
  MINERGY_CHECK_MSG(!finalized_, "netlist already finalized");
  MINERGY_CHECK(id < gates_.size());
  gates_[id].fanins = std::move(fanins);
}

void Netlist::mark_output(GateId id) {
  MINERGY_CHECK(id < gates_.size());
  gates_[id].is_primary_output = true;
}

void Netlist::finalize() {
  MINERGY_CHECK_MSG(!finalized_, "finalize() called twice");

  // Arity and reference checks.
  for (const Gate& g : gates_) {
    for (GateId f : g.fanins) {
      if (f >= gates_.size()) {
        throw NetlistError("gate " + g.name +
                                    " references undefined fanin id");
      }
    }
    const int n = g.fanin_count();
    const int lo = min_fanin(g.type);
    const int hi = max_fanin(g.type);
    if (n < lo || (hi > 0 && n > hi)) {
      throw NetlistError("gate " + g.name + " (" +
                                  std::string(to_string(g.type)) + ") has " +
                                  std::to_string(n) + " fanins");
    }
  }

  // Fanouts.
  for (Gate& g : gates_) g.fanouts.clear();
  for (const Gate& g : gates_) {
    for (GateId f : g.fanins) gates_[f].fanouts.push_back(g.id);
  }

  // Sources of the combinational core.
  sources_.clear();
  for (const Gate& g : gates_) {
    if (g.type == GateType::kInput || g.type == GateType::kDff) {
      sources_.push_back(g.id);
    }
  }

  // Kahn topological sort over logic gates; edges from DFF outputs count as
  // source edges (a DFF's own fanin does not constrain its Q availability).
  std::vector<int> pending(gates_.size(), 0);
  for (const Gate& g : gates_) {
    if (!is_combinational(g.type)) continue;
    int deps = 0;
    for (GateId f : g.fanins) {
      if (is_combinational(gates_[f].type)) ++deps;
    }
    pending[g.id] = deps;
  }
  topo_.clear();
  std::vector<GateId> ready;
  for (const Gate& g : gates_) {
    if (is_combinational(g.type) && pending[g.id] == 0) ready.push_back(g.id);
  }
  // Deterministic order: process in ascending id.
  std::sort(ready.begin(), ready.end());
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId id = ready[head];
    topo_.push_back(id);
    for (GateId out : gates_[id].fanouts) {
      if (!is_combinational(gates_[out].type)) continue;
      if (--pending[out] == 0) ready.push_back(out);
    }
  }
  std::size_t num_logic = 0;
  for (const Gate& g : gates_) num_logic += is_combinational(g.type) ? 1u : 0u;
  if (topo_.size() != num_logic) {
    throw NetlistError("netlist " + name_ +
                                " has a combinational cycle");
  }

  // Levels.
  depth_ = 0;
  for (Gate& g : gates_) g.level = -1;
  for (GateId id : sources_) gates_[id].level = 0;
  for (GateId id : topo_) {
    int lvl = 0;
    for (GateId f : gates_[id].fanins) {
      lvl = std::max(lvl, gates_[f].level + 1);
    }
    gates_[id].level = lvl;
    depth_ = std::max(depth_, lvl);
  }

  // Level buckets for the parallel evaluators. Bucketing topo_ keeps only
  // logic gates; sorting each bucket by id makes the serial in-bucket order
  // (and thus any ordered reduction over a bucket) deterministic.
  level_groups_.clear();
  level_groups_.resize(static_cast<std::size_t>(depth_) + 1);
  for (GateId id : topo_) {
    level_groups_[static_cast<std::size_t>(gates_[id].level)].push_back(id);
  }
  level_groups_.erase(
      std::remove_if(level_groups_.begin(), level_groups_.end(),
                     [](const std::vector<GateId>& b) { return b.empty(); }),
      level_groups_.end());
  for (auto& bucket : level_groups_) std::sort(bucket.begin(), bucket.end());

  // Role lists.
  outputs_.clear();
  for (const Gate& g : gates_) {
    if (g.is_primary_output) outputs_.push_back(g.id);
  }
  sink_drivers_.clear();
  for (const Gate& g : gates_) {
    const bool feeds_dff = std::any_of(
        g.fanouts.begin(), g.fanouts.end(),
        [this](GateId o) { return gates_[o].type == GateType::kDff; });
    if (g.is_primary_output || feeds_dff) sink_drivers_.push_back(g.id);
  }

  finalized_ = true;
}

GateId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidGate : it->second;
}

}  // namespace minergy::netlist
