#include "netlist/transform.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace minergy::netlist {
namespace {

// The non-inverting companion used for the inner nodes of a tree.
GateType inner_type(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
      return GateType::kAnd;
    case GateType::kOr:
    case GateType::kNor:
      return GateType::kOr;
    case GateType::kXor:
    case GateType::kXnor:
      return GateType::kXor;
    default:
      return type;
  }
}

bool root_inverts(GateType type) {
  return type == GateType::kNand || type == GateType::kNor ||
         type == GateType::kXnor;
}

}  // namespace

Netlist decompose_to_two_input(const Netlist& nl) {
  MINERGY_CHECK(nl.finalized());
  Netlist out(nl.name() + "_2in");
  std::vector<GateId> map(nl.size(), kInvalidGate);

  // Recreate sources first (ids keep relative order).
  for (const Gate& g : nl.gates()) {
    if (g.type == GateType::kInput) map[g.id] = out.add_input(g.name);
    if (g.type == GateType::kDff) map[g.id] = out.add_dff(g.name);
  }

  // Logic gates in topological order so mapped fanins already exist.
  for (GateId id : nl.combinational()) {
    const Gate& g = nl.gate(id);
    std::vector<GateId> ins;
    for (GateId f : g.fanins) {
      MINERGY_CHECK(map[f] != kInvalidGate);
      ins.push_back(map[f]);
    }
    if (ins.size() <= 2) {
      map[id] = out.add_gate(g.type, g.name, std::move(ins));
    } else {
      // Balanced reduction: combine pairs level by level; the final
      // combination carries the original gate's name and inversion.
      const GateType inner = inner_type(g.type);
      const GateType root =
          root_inverts(g.type)
              ? (inner == GateType::kAnd   ? GateType::kNand
                 : inner == GateType::kOr  ? GateType::kNor
                                           : GateType::kXnor)
              : inner;
      int counter = 0;
      while (ins.size() > 2) {
        std::vector<GateId> next;
        for (std::size_t i = 0; i + 1 < ins.size(); i += 2) {
          next.push_back(out.add_gate(
              inner, g.name + "_t" + std::to_string(counter++),
              {ins[i], ins[i + 1]}));
        }
        if (ins.size() % 2) next.push_back(ins.back());
        ins = std::move(next);
      }
      map[id] = out.add_gate(root, g.name, std::move(ins));
    }
  }

  // Reconnect DFF D-pins and primary outputs.
  for (GateId id : nl.dffs()) {
    const Gate& g = nl.gate(id);
    if (!g.fanins.empty()) out.set_fanins(map[id], {map[g.fanins[0]]});
  }
  for (GateId id : nl.primary_outputs()) out.mark_output(map[id]);

  out.finalize();
  return out;
}

Netlist buffer_high_fanout(const Netlist& nl, int max_fanout) {
  MINERGY_CHECK(nl.finalized());
  if (max_fanout < 2) throw std::invalid_argument("max_fanout must be >= 2");

  Netlist out(nl.name() + "_buf");
  std::vector<GateId> map(nl.size(), kInvalidGate);
  for (const Gate& g : nl.gates()) {
    if (g.type == GateType::kInput) map[g.id] = out.add_input(g.name);
    if (g.type == GateType::kDff) map[g.id] = out.add_dff(g.name);
  }
  for (GateId id : nl.combinational()) {
    const Gate& g = nl.gate(id);
    std::vector<GateId> ins;
    for (GateId f : g.fanins) ins.push_back(map[f]);
    map[id] = out.add_gate(g.type, g.name, std::move(ins));
  }
  for (GateId id : nl.dffs()) {
    const Gate& g = nl.gate(id);
    if (!g.fanins.empty()) out.set_fanins(map[id], {map[g.fanins[0]]});
  }

  // Split overloaded nets with a bottom-up buffer tree: every level (the
  // original driver included) ends up with at most max_fanout gate sinks.
  for (const Gate& g : nl.gates()) {
    if (g.fanouts.size() <= static_cast<std::size_t>(max_fanout)) continue;

    // A sink is either an input pin of a mapped gate or a buffer awaiting
    // its source.
    struct Sink {
      GateId gate;        // mapped id
      std::size_t index;  // fanin position
    };
    std::vector<Sink> current;
    for (GateId sink : g.fanouts) {
      const Gate& s = nl.gate(sink);
      for (std::size_t i = 0; i < s.fanins.size(); ++i) {
        if (s.fanins[i] == g.id) current.push_back({map[sink], i});
      }
    }
    auto connect = [&](const Sink& sink, GateId source) {
      auto fanins = out.gate(sink.gate).fanins;
      MINERGY_CHECK(sink.index < fanins.size());
      fanins[sink.index] = source;
      out.set_fanins(sink.gate, std::move(fanins));
    };

    int counter = 0;
    while (current.size() > static_cast<std::size_t>(max_fanout)) {
      std::vector<Sink> next_level;
      for (std::size_t start = 0; start < current.size();
           start += static_cast<std::size_t>(max_fanout)) {
        const std::size_t take = std::min<std::size_t>(
            static_cast<std::size_t>(max_fanout), current.size() - start);
        if (take == 1) {
          next_level.push_back(current[start]);
          continue;
        }
        // Placeholder source; the parent level reconnects it.
        const GateId buf = out.add_gate(
            GateType::kBuf, g.name + "_buf" + std::to_string(counter++),
            {map[g.id]});
        for (std::size_t k = 0; k < take; ++k) {
          connect(current[start + k], buf);
        }
        next_level.push_back({buf, 0});
      }
      current = std::move(next_level);
    }
    for (const Sink& sink : current) connect(sink, map[g.id]);
  }

  for (GateId id : nl.primary_outputs()) out.mark_output(map[id]);

  out.finalize();
  return out;
}

Netlist sweep_dead_logic(const Netlist& nl) {
  MINERGY_CHECK(nl.finalized());

  // Liveness fixed point: a net is live if it (transitively) feeds a PO or
  // the D-pin of a live DFF. Start from POs, iterate because DFF liveness
  // feeds back into combinational liveness.
  std::vector<char> live(nl.size(), 0);
  auto mark_cone = [&](GateId root) {
    std::vector<GateId> stack{root};
    while (!stack.empty()) {
      const GateId id = stack.back();
      stack.pop_back();
      if (live[id]) continue;
      live[id] = 1;
      for (GateId f : nl.gate(id).fanins) stack.push_back(f);
    }
  };
  for (GateId id : nl.primary_outputs()) mark_cone(id);
  bool changed = true;
  while (changed) {
    changed = false;
    for (GateId q : nl.dffs()) {
      if (!live[q]) continue;
      const Gate& g = nl.gate(q);
      if (!g.fanins.empty() && !live[g.fanins[0]]) {
        mark_cone(g.fanins[0]);
        changed = true;
      }
    }
  }

  Netlist out(nl.name() + "_swept");
  std::vector<GateId> map(nl.size(), kInvalidGate);
  for (const Gate& g : nl.gates()) {
    if (g.type == GateType::kInput) {
      map[g.id] = out.add_input(g.name);  // interface: always kept
    } else if (g.type == GateType::kDff && live[g.id]) {
      map[g.id] = out.add_dff(g.name);
    }
  }
  for (GateId id : nl.combinational()) {
    if (!live[id]) continue;
    const Gate& g = nl.gate(id);
    std::vector<GateId> ins;
    for (GateId f : g.fanins) {
      MINERGY_CHECK(map[f] != kInvalidGate);
      ins.push_back(map[f]);
    }
    map[id] = out.add_gate(g.type, g.name, std::move(ins));
  }
  for (GateId q : nl.dffs()) {
    if (!live[q]) continue;
    const Gate& g = nl.gate(q);
    if (!g.fanins.empty()) out.set_fanins(map[q], {map[g.fanins[0]]});
  }
  for (GateId id : nl.primary_outputs()) out.mark_output(map[id]);

  out.finalize();
  return out;
}

}  // namespace minergy::netlist
