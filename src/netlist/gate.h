// Gate vocabulary for CMOS random-logic networks.
//
// The paper assumes simple multi-input static CMOS gates with symmetric
// series/parallel pull-up and pull-down networks (Appendix A.1); DFFs appear
// only as sequential boundaries of the ISCAS-89 circuits and are treated as
// cut points (Q = pseudo primary input, D = pseudo primary output).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace minergy::netlist {

enum class GateType {
  kInput,  // primary input (no fanin)
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kDff,  // sequential element; fanin = D, output = Q
};

// Canonical upper-case name ("NAND", "DFF", ...).
std::string_view to_string(GateType type);

// Parses common spellings (case-insensitive; accepts BUF/BUFF, FF/DFF).
std::optional<GateType> gate_type_from_string(std::string_view s);

// True for the logic gates the optimizer sizes (everything except
// kInput and kDff).
bool is_combinational(GateType type);

// True if the gate logically inverts (single-stage static CMOS: NOT, NAND,
// NOR, XNOR). AND/OR/BUF are modeled as the paper does, as one sized stage.
bool is_inverting(GateType type);

// Allowed fanin count: [min_fanin, max_fanin] (max_fanin = 0 means
// unbounded).
int min_fanin(GateType type);
int max_fanin(GateType type);

// Boolean evaluation over the input values. kInput/kDff are identity over
// their (externally supplied) single value.
bool evaluate(GateType type, std::span<const bool> inputs);

}  // namespace minergy::netlist
