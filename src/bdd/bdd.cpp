#include "bdd/bdd.h"

#include <algorithm>

#include "util/check.h"

namespace minergy::bdd {
namespace {

// Pack three 21-bit fields into one 64-bit key (node refs and variable
// indices both fit: the node limit is capped at 2^21).
constexpr std::uint64_t pack(std::uint64_t a, std::uint64_t b,
                             std::uint64_t c) {
  return (a << 42) | (b << 21) | c;
}

}  // namespace

BddManager::BddManager(int num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(std::min<std::size_t>(node_limit, 1u << 21)) {
  MINERGY_CHECK(num_vars >= 0);
  MINERGY_CHECK(num_vars < (1 << 20));
  nodes_.push_back({kTerminalVar, 0, 0});  // 0 = false
  nodes_.push_back({kTerminalVar, 1, 1});  // 1 = true
  var_nodes_.assign(static_cast<std::size_t>(num_vars), 0);
  for (int i = 0; i < num_vars; ++i) {
    var_nodes_[static_cast<std::size_t>(i)] =
        make_node(i, zero(), one());
  }
}

NodeRef BddManager::make_node(int var, NodeRef lo, NodeRef hi) {
  if (lo == hi) return lo;  // reduction rule
  const std::uint64_t key =
      pack(static_cast<std::uint64_t>(var) + 1, lo, hi);
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) {
    throw BddOverflow("BDD node limit (" + std::to_string(node_limit_) +
                      ") exceeded");
  }
  const NodeRef ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

NodeRef BddManager::var(int index) {
  MINERGY_CHECK(index >= 0 && index < num_vars_);
  return var_nodes_[static_cast<std::size_t>(index)];
}

int BddManager::top_var(NodeRef f, NodeRef g, NodeRef h) const {
  int v = kTerminalVar;
  v = std::min(v, nodes_[f].var);
  v = std::min(v, nodes_[g].var);
  v = std::min(v, nodes_[h].var);
  return v;
}

NodeRef BddManager::ite(NodeRef f, NodeRef g, NodeRef h) {
  // Terminal cases.
  if (f == one()) return g;
  if (f == zero()) return h;
  if (g == h) return g;
  if (g == one() && h == zero()) return f;

  const std::uint64_t key = pack(f, g, h);
  auto it = ite_memo_.find(key);
  if (it != ite_memo_.end()) return it->second;

  const int v = top_var(f, g, h);
  auto cof = [&](NodeRef x, bool value) -> NodeRef {
    const Node& n = nodes_[x];
    if (n.var != v) return x;
    return value ? n.hi : n.lo;
  };
  const NodeRef lo = ite(cof(f, false), cof(g, false), cof(h, false));
  const NodeRef hi = ite(cof(f, true), cof(g, true), cof(h, true));
  const NodeRef result = make_node(v, lo, hi);
  ite_memo_.emplace(key, result);
  return result;
}

NodeRef BddManager::not_of(NodeRef f) { return ite(f, zero(), one()); }

NodeRef BddManager::and_of(NodeRef f, NodeRef g) { return ite(f, g, zero()); }

NodeRef BddManager::or_of(NodeRef f, NodeRef g) { return ite(f, one(), g); }

NodeRef BddManager::xor_of(NodeRef f, NodeRef g) {
  return ite(f, not_of(g), g);
}

NodeRef BddManager::cofactor(NodeRef f, int index, bool value) {
  MINERGY_CHECK(index >= 0 && index < num_vars_);
  std::unordered_map<NodeRef, NodeRef> memo;
  auto rec = [&](auto&& self, NodeRef x) -> NodeRef {
    // Copy: recursive make_node calls can grow (reallocate) nodes_, so a
    // reference into the vector must not be held across them.
    const Node n = nodes_[x];
    if (n.var > index) return x;  // terminals have var = INT_MAX > index
    auto it = memo.find(x);
    if (it != memo.end()) return it->second;
    NodeRef result;
    if (n.var == index) {
      result = value ? n.hi : n.lo;
    } else {
      const NodeRef lo = self(self, n.lo);
      const NodeRef hi = self(self, n.hi);
      result = make_node(n.var, lo, hi);
    }
    memo.emplace(x, result);
    return result;
  };
  return rec(rec, f);
}

NodeRef BddManager::boolean_difference(NodeRef f, int index) {
  return xor_of(cofactor(f, index, false), cofactor(f, index, true));
}

double BddManager::probability(NodeRef f,
                               std::span<const double> probs) const {
  MINERGY_CHECK(probs.size() >= static_cast<std::size_t>(num_vars_));
  std::unordered_map<NodeRef, double> memo;
  auto rec = [&](auto&& self, NodeRef x) -> double {
    if (x == zero()) return 0.0;
    if (x == one()) return 1.0;
    auto it = memo.find(x);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[x];
    const double p = probs[static_cast<std::size_t>(n.var)];
    const double result =
        (1.0 - p) * self(self, n.lo) + p * self(self, n.hi);
    memo.emplace(x, result);
    return result;
  };
  return rec(rec, f);
}

bool BddManager::evaluate(NodeRef f, std::span<const bool> assignment) const {
  MINERGY_CHECK(assignment.size() >= static_cast<std::size_t>(num_vars_));
  while (!is_terminal(f)) {
    const Node& n = nodes_[f];
    f = assignment[static_cast<std::size_t>(n.var)] ? n.hi : n.lo;
  }
  return f == one();
}

std::size_t BddManager::size(NodeRef f) const {
  std::vector<NodeRef> stack{f};
  std::unordered_map<NodeRef, bool> seen;
  std::size_t count = 0;
  while (!stack.empty()) {
    const NodeRef x = stack.back();
    stack.pop_back();
    if (is_terminal(x) || seen.count(x)) continue;
    seen.emplace(x, true);
    ++count;
    stack.push_back(nodes_[x].lo);
    stack.push_back(nodes_[x].hi);
  }
  return count;
}

bool BddManager::depends_on(NodeRef f, int index) const {
  std::vector<NodeRef> stack{f};
  std::unordered_map<NodeRef, bool> seen;
  while (!stack.empty()) {
    const NodeRef x = stack.back();
    stack.pop_back();
    if (is_terminal(x) || seen.count(x)) continue;
    seen.emplace(x, true);
    const Node& n = nodes_[x];
    if (n.var == index) return true;
    if (n.var < index) {  // ordered: deeper nodes may still contain index
      stack.push_back(n.lo);
      stack.push_back(n.hi);
    }
  }
  return false;
}

}  // namespace minergy::bdd
