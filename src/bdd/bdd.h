// Reduced Ordered Binary Decision Diagrams.
//
// A compact ROBDD package sized for the exact-activity analysis the paper
// cites as the higher-order alternative (Stamoulis/Hajj '93) to its
// first-order transition-density propagation: canonical node table,
// memoized ITE, restriction (cofactors), and exact signal probability under
// independent input distributions. No complement edges and no garbage
// collection — circuits at ISCAS-89 scale stay far below the node limit,
// and a hard cap turns pathological growth into a typed exception callers
// can catch to fall back to the first-order method.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace minergy::bdd {

using NodeRef = std::uint32_t;

// Thrown when the unique table would exceed the configured node limit.
class BddOverflow : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BddManager {
 public:
  // num_vars: number of input variables (fixed order: 0 .. num_vars-1).
  explicit BddManager(int num_vars, std::size_t node_limit = 1u << 21);

  int num_vars() const { return num_vars_; }
  std::size_t node_count() const { return nodes_.size(); }

  NodeRef zero() const { return 0; }
  NodeRef one() const { return 1; }
  bool is_terminal(NodeRef f) const { return f <= 1; }

  // Projection function of variable `index`.
  NodeRef var(int index);

  // Boolean connectives (all reduce to memoized ITE).
  NodeRef not_of(NodeRef f);
  NodeRef and_of(NodeRef f, NodeRef g);
  NodeRef or_of(NodeRef f, NodeRef g);
  NodeRef xor_of(NodeRef f, NodeRef g);
  NodeRef ite(NodeRef f, NodeRef g, NodeRef h);

  // Restriction f|_{var=value}.
  NodeRef cofactor(NodeRef f, int index, bool value);

  // Boolean difference df/dx = f|x=0 xor f|x=1.
  NodeRef boolean_difference(NodeRef f, int index);

  // Exact P(f = 1) given independent P(x_i = 1) = probs[i].
  double probability(NodeRef f, std::span<const double> probs) const;

  // Evaluate under a full assignment.
  bool evaluate(NodeRef f, std::span<const bool> assignment) const;

  // Number of distinct nodes reachable from f (terminals excluded).
  std::size_t size(NodeRef f) const;

  // True iff the variable occurs in f's support.
  bool depends_on(NodeRef f, int index) const;

 private:
  struct Node {
    int var;  // kTerminalVar for terminals
    NodeRef lo, hi;
  };
  static constexpr int kTerminalVar = std::numeric_limits<int>::max();

  NodeRef make_node(int var, NodeRef lo, NodeRef hi);
  int top_var(NodeRef f, NodeRef g, NodeRef h) const;

  int num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, NodeRef> unique_;   // (var,lo,hi) key
  std::unordered_map<std::uint64_t, NodeRef> ite_memo_;  // packed key
  std::vector<NodeRef> var_nodes_;
};

}  // namespace minergy::bdd
