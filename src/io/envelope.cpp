#include "io/envelope.h"

#include <array>
#include <cstdio>

#include "io/durable.h"
#include "obs/metrics.h"

namespace minergy::io {

namespace {

const char* kind_name(IntegrityError::Kind kind) {
  switch (kind) {
    case IntegrityError::Kind::kTruncated:
      return "truncated";
    case IntegrityError::Kind::kCorrupt:
      return "corrupt";
    case IntegrityError::Kind::kSchemaMismatch:
      return "schema-mismatch";
  }
  return "unknown";
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void count_rejection(IntegrityError::Kind kind) {
  static obs::Counter& truncated =
      obs::counter("io.envelope.rejected.truncated");
  static obs::Counter& corrupt = obs::counter("io.envelope.rejected.corrupt");
  static obs::Counter& schema =
      obs::counter("io.envelope.rejected.schema_mismatch");
  switch (kind) {
    case IntegrityError::Kind::kTruncated:
      truncated.add();
      break;
    case IntegrityError::Kind::kCorrupt:
      corrupt.add();
      break;
    case IntegrityError::Kind::kSchemaMismatch:
      schema.add();
      break;
  }
}

[[noreturn]] void reject(IntegrityError::Kind kind, const std::string& what,
                         const std::string& path) {
  count_rejection(kind);
  throw IntegrityError(kind, what, path);
}

}  // namespace

IntegrityError::IntegrityError(Kind kind, const std::string& what,
                               const std::string& file)
    : util::ParseError(std::string("artifact envelope ") + kind_name(kind) +
                           ": " + what,
                       file, 0),
      kind_(kind) {}

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

std::string wrap_envelope(std::string_view payload, std::string_view schema) {
  std::string doc(payload);
  if (doc.empty() || doc.back() != '\n') doc += '\n';
  char footer[160];
  std::snprintf(footer, sizeof footer, "%.*sschema=%.*s len=%010zu crc32=%08x\n",
                static_cast<int>(kEnvelopeMagic.size()), kEnvelopeMagic.data(),
                static_cast<int>(schema.size()), schema.data(), doc.size(),
                crc32(doc));
  doc += footer;
  return doc;
}

bool has_envelope_footer(std::string_view text) {
  if (text.empty() || text.back() != '\n') return false;
  const std::size_t line_start = text.rfind('\n', text.size() - 2);
  const std::string_view last_line =
      line_start == std::string_view::npos
          ? text
          : text.substr(line_start + 1);
  return last_line.substr(0, kEnvelopeMagic.size()) == kEnvelopeMagic;
}

std::string unwrap_envelope(std::string_view text,
                            std::string_view expected_schema,
                            const std::string& path) {
  if (text.empty()) {
    reject(IntegrityError::Kind::kTruncated, "file is empty", path);
  }
  if (text.back() != '\n') {
    reject(IntegrityError::Kind::kTruncated,
           "footer line is cut (no trailing newline)", path);
  }
  const std::size_t line_start = text.rfind('\n', text.size() - 2);
  const std::size_t footer_at =
      line_start == std::string_view::npos ? 0 : line_start + 1;
  const std::string_view footer =
      text.substr(footer_at, text.size() - footer_at - 1);  // sans '\n'
  if (footer.substr(0, kEnvelopeMagic.size()) != kEnvelopeMagic) {
    reject(IntegrityError::Kind::kTruncated,
           "no envelope footer (artifact truncated before the footer line)",
           path);
  }
  char schema_buf[96];
  std::size_t len = 0;
  unsigned crc = 0;
  const std::string footer_text(footer.substr(kEnvelopeMagic.size()));
  if (std::sscanf(footer_text.c_str(), "schema=%95s len=%zu crc32=%x",
                  schema_buf, &len, &crc) != 3) {
    reject(IntegrityError::Kind::kTruncated,
           "malformed envelope footer '" + footer_text + "'", path);
  }
  const std::string_view payload = text.substr(0, footer_at);
  if (payload.size() != len) {
    reject(IntegrityError::Kind::kTruncated,
           "payload is " + std::to_string(payload.size()) +
               " byte(s), footer recorded " + std::to_string(len),
           path);
  }
  const std::uint32_t actual = crc32(payload);
  if (actual != static_cast<std::uint32_t>(crc)) {
    char msg[96];
    std::snprintf(msg, sizeof msg,
                  "crc32 %08x does not match footer %08x (bit rot)", actual,
                  crc);
    reject(IntegrityError::Kind::kCorrupt, msg, path);
  }
  if (!expected_schema.empty() && schema_buf != expected_schema) {
    reject(IntegrityError::Kind::kSchemaMismatch,
           "artifact schema '" + std::string(schema_buf) +
               "' does not match expected '" + std::string(expected_schema) +
               "'",
           path);
  }
  static obs::Counter& verified = obs::counter("io.envelope.verified");
  verified.add();
  return std::string(payload);
}

std::string read_artifact(const std::string& path,
                          std::string_view expected_schema) {
  return unwrap_envelope(read_file_or_throw(path), expected_schema, path);
}

void write_artifact(const std::string& path, std::string_view schema,
                    std::string_view payload) {
  atomic_write_durable(path, wrap_envelope(payload, schema));
}

}  // namespace minergy::io
