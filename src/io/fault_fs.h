// Process-wide storage-fault injection for the durable I/O layer.
//
// Every logical storage operation the io layer performs — a whole-file
// write, an fsync (file or parent directory), a rename, a whole-file read —
// consults FaultFs before touching the kernel. A configured schedule can
// fail the Nth call of an op with ENOSPC/EIO, tear a write at a byte
// offset, commit a torn write as if it had succeeded (the lost-write-after-
// rename failure mode that fsync discipline exists to prevent), or deliver
// a short read. Counting is per-process and per-op, so a given spec
// reproduces byte-for-byte — the same philosophy as serve/inject.h's
// SIGKILL points, extended from process death to storage death.
//
// Spec grammar (comma-separated directives):
//
//   <op>@<N>:<effect>
//
//   op      write | fsync | rename | read
//   N       1-based call count of that op within this process
//   effect  enospc           fail with ENOSPC (typed io::DiskFullError)
//           eio              fail with EIO (typed io::IoError)
//           tear=<K>         write only the first K bytes, then fail (EIO);
//                            the atomic-rename protocol discards the torn
//                            temp file (write op only)
//           tearcommit=<K>   write only the first K bytes but report
//                            success — the final file lands torn, as after
//                            a power cut on a non-ordered filesystem
//                            (write op only)
//           short=<K>        deliver only the first K bytes (read op only)
//
// Example: --inject-io=write@3:enospc,fsync@1:eio,read@2:short=17
//
// A directive fires exactly once, at its exact count. In a normal run no
// schedule is configured and next() is a single branch on an empty vector.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace minergy::io {

// The fault scheduled for one specific op call (kNone = proceed normally).
struct FaultAction {
  enum class Kind { kNone, kErrno, kTear, kTearCommit, kShortRead };
  Kind kind = Kind::kNone;
  int error_number = 0;    // for kErrno (kTear implies EIO)
  std::size_t bytes = 0;   // tear offset / short-read length
};

class FaultFs {
 public:
  static FaultFs& instance();

  // Installs a schedule from the spec grammar above; "" disarms. Throws
  // std::invalid_argument on a malformed spec (unknown op/effect, bad
  // count) so CLI callers can map it to a usage error.
  void configure(const std::string& spec);

  // The configured spec verbatim ("" when disarmed) — used to propagate the
  // schedule into spawned worker processes, exactly like the kill switch.
  const std::string& spec() const { return spec_; }

  bool armed() const { return !rules_.empty(); }

  // Consulted once per logical op; bumps the per-op call count and returns
  // the fault scheduled for this call (each directive fires at most once).
  FaultAction next(const char* op);

  // Disarms and zeroes the per-op call counts (tests).
  void reset();

 private:
  FaultFs() = default;

  struct Rule {
    std::string op;
    std::uint64_t at = 0;
    FaultAction action;
    bool fired = false;
  };

  mutable std::mutex mu_;
  std::string spec_;
  std::vector<Rule> rules_;
  // Per-op call counts, indexed by op name.
  std::vector<std::pair<std::string, std::uint64_t>> counts_;
};

}  // namespace minergy::io
