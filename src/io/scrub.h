// Anti-entropy spool scrubber: re-verify everything at rest, repair what
// generational history allows, quarantine (never delete) the rest.
//
// PR-5's CRC envelopes detect torn writes and bit-rot — but only at the
// moment a file happens to be opened, which for a terminal job record may
// be never. The scrubber closes that gap: it walks every artifact class in
// a spool directory and re-runs the full envelope verification (footer,
// length, CRC32, schema) plus a JSON parse on each file, then applies one
// of three dispositions:
//
//   clean        artifact intact — nothing touched
//   repaired     artifact restored or safely retired:
//                  - a damaged checkpoint generation is replaced by
//                    promoting the newest intact older generation
//                    (io::Checkpoint keeps kGenerations snapshots)
//                  - a damaged scratch result envelope is retired (the
//                    attempt re-runs; results/ is regenerable by design)
//                  - damaged health/overload/quota/lease documents are
//                    retired (the daemon republishes them within one
//                    control-loop tick; admission fails open meanwhile)
//   quarantined  a damaged JOB RECORD (pending/running/done/failed/
//                quarantined partitions) — genuinely unrecoverable state.
//                The bytes move to <root>/scrub_quarantine/ and a
//                synthesized quarantined/<id> terminal record keeps the
//                spool's every-job-in-exactly-one-terminal-state audit
//                (minergy_served --status --verify) intact.
//
// Damaged bytes are ALWAYS moved into <root>/scrub_quarantine/, never
// unlinked: an operator (or a future smarter repair) can still get at
// them. Files that vanish mid-scrub are normal on a live spool (the leader
// keeps renaming things) and are counted, not flagged.
//
// Exit-code mapping for the offline `minergy_served --scrub` mode:
// 0 = all clean, 1 = damage found and every artifact repaired,
// 2 = at least one artifact quarantined.
//
// The scrubber emits io.scrub.* counters and scrub_repair /
// scrub_quarantine / scrub_pass events into the standard obs surfaces; the
// leader daemon runs it periodically (--scrub-interval-s) between claim
// passes.
//
// Schema ids for the serve-layer artifacts are mirrored here as literals
// (the io layer sits below serve and cannot include its headers); the
// spool layout is a stable on-disk contract, tested by tests/test_scrub.
#pragma once

#include <string>
#include <vector>

namespace minergy::io {

struct ScrubOptions {
  // false = report-only: findings are counted and logged but nothing is
  // moved, promoted or synthesized.
  bool repair = true;
};

// One damaged (or vanished) artifact.
struct ScrubFinding {
  std::string path;     // spool-relative
  std::string problem;  // "truncated" | "corrupt" | "schema" | "parse"
  std::string action;   // "repaired" | "quarantined" | "reported" | "vanished"
  std::string detail;
};

struct ScrubReport {
  int checked = 0;
  int clean = 0;
  int repaired = 0;
  int quarantined = 0;
  int vanished = 0;
  std::vector<ScrubFinding> findings;

  int exit_code() const {
    if (quarantined > 0) return 2;
    return repaired > 0 ? 1 : 0;
  }
};

class SpoolScrubber {
 public:
  explicit SpoolScrubber(std::string root, ScrubOptions opts = {});

  // One full pass over the spool. Safe to run concurrently with a live
  // leader: every mutation is the same atomic-rename discipline the queue
  // itself uses, and in-flight renames read as vanished.
  ScrubReport run();

  // Where quarantined bytes land: <root>/scrub_quarantine/.
  std::string quarantine_dir() const;

 private:
  struct Verdict;  // internal per-file verification result

  Verdict verify_file(const std::string& path,
                      const std::string& schema) const;
  // Moves `path` into scrub_quarantine/ (collision-safe). Returns the
  // destination, or "" on failure.
  std::string move_to_quarantine(const std::string& path) const;
  void scrub_job_partition(const std::string& state, ScrubReport* report);
  void scrub_results(ScrubReport* report);
  void scrub_checkpoints(ScrubReport* report);
  void scrub_singleton(const std::string& name, const std::string& schema,
                       ScrubReport* report);
  void scrub_quota(ScrubReport* report);
  void note(ScrubReport* report, ScrubFinding finding, const char* outcome);

  std::string root_;
  ScrubOptions opts_;
};

}  // namespace minergy::io
