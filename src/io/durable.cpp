#include "io/durable.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "io/fault_fs.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace minergy::io {

namespace {

std::string describe(const std::string& op, const std::string& path,
                     int error_number) {
  std::string msg = op + " failed for " + path;
  if (error_number != 0) {
    msg += ": ";
    msg += std::strerror(error_number);
  }
  return msg;
}

// RAII fd so every early throw below closes cleanly.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  int release() {
    const int f = fd;
    fd = -1;
    return f;
  }
};

void count_fault_injected() {
  static obs::Counter& c = obs::counter("io.fault.injected");
  c.add();
}

// EINTR-safe full write of `data` to `fd`.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void fsync_or_throw(int fd, const std::string& path) {
  const FaultAction fault = FaultFs::instance().next("fsync");
  if (fault.kind == FaultAction::Kind::kErrno) {
    count_fault_injected();
    static obs::Counter& c = obs::counter("io.fsync.failures");
    c.add();
    throw_io_error("fsync", path, fault.error_number);
  }
  if (::fsync(fd) != 0) {
    static obs::Counter& c = obs::counter("io.fsync.failures");
    c.add();
    throw_io_error("fsync", path, errno);
  }
}

}  // namespace

IoError::IoError(const std::string& op, const std::string& path,
                 int error_number)
    : std::runtime_error(describe(op, path, error_number)),
      op_(op),
      path_(path),
      error_number_(error_number) {}

void throw_io_error(const std::string& op, const std::string& path,
                    int error_number) {
  if (error_number == ENOSPC || error_number == EDQUOT) {
    throw DiskFullError(op, path, error_number);
  }
  throw IoError(op, path, error_number);
}

void atomic_write_durable(const std::string& path, std::string_view content) {
  static obs::Counter& calls = obs::counter("io.write.calls");
  static obs::Counter& failures = obs::counter("io.write.failures");
  calls.add();
  const std::string tmp = path + ".tmp";
  const auto fail = [&](const char* op, int error_number) {
    failures.add();
    ::unlink(tmp.c_str());
    throw_io_error(op, path, error_number);
  };

  Fd fd;
  fd.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd.fd < 0) fail("open", errno);

  const FaultAction write_fault = FaultFs::instance().next("write");
  switch (write_fault.kind) {
    case FaultAction::Kind::kErrno:
      count_fault_injected();
      // A real ENOSPC surfaces mid-write; model it as a partial write that
      // the protocol then discards.
      write_all(fd.fd, content.data(), content.size() / 2);
      fail("write", write_fault.error_number);
      break;
    case FaultAction::Kind::kTear:
      count_fault_injected();
      write_all(fd.fd, content.data(),
                std::min(write_fault.bytes, content.size()));
      fail("write", write_fault.error_number);
      break;
    case FaultAction::Kind::kTearCommit: {
      // The lost-write-after-rename failure mode: the torn prefix is
      // committed under the final name and reported as success. Only the
      // envelope CRC can catch this at read time.
      count_fault_injected();
      static obs::Counter& torn = obs::counter("io.fault.torn_commits");
      torn.add();
      write_all(fd.fd, content.data(),
                std::min(write_fault.bytes, content.size()));
      ::close(fd.release());
      if (::rename(tmp.c_str(), path.c_str()) != 0) fail("rename", errno);
      return;
    }
    case FaultAction::Kind::kShortRead:
    case FaultAction::Kind::kNone:
      if (!write_all(fd.fd, content.data(), content.size())) {
        fail("write", errno);
      }
      break;
  }

  try {
    fsync_or_throw(fd.fd, tmp);
  } catch (const IoError&) {
    failures.add();
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd.release());

  const FaultAction rename_fault = FaultFs::instance().next("rename");
  if (rename_fault.kind == FaultAction::Kind::kErrno) {
    count_fault_injected();
    static obs::Counter& c = obs::counter("io.rename.failures");
    c.add();
    fail("rename", rename_fault.error_number);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    static obs::Counter& c = obs::counter("io.rename.failures");
    c.add();
    fail("rename", errno);
  }

  try {
    fsync_parent_dir(path);
  } catch (const IoError&) {
    // The content is committed under its final name; a failed directory
    // fsync can only lose the rename across a power cut, which the
    // generation/rescan protocols tolerate. Surface it to the caller so the
    // service can degrade, but do not unlink the (complete) file.
    failures.add();
    throw;
  }
}

std::string read_file_or_throw(const std::string& path) {
  Fd fd;
  fd.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd.fd < 0) {
    // Same contract as the old util::read_file_or_throw: a missing file is
    // a ParseError, which "no checkpoint yet" paths already treat as benign.
    throw util::ParseError("cannot open file", path, 0);
  }
  std::string content;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd.fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io_error("read", path, errno);
    }
    if (n == 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }
  const FaultAction fault = FaultFs::instance().next("read");
  if (fault.kind == FaultAction::Kind::kErrno) {
    count_fault_injected();
    throw_io_error("read", path, fault.error_number);
  }
  if (fault.kind == FaultAction::Kind::kShortRead) {
    count_fault_injected();
    static obs::Counter& c = obs::counter("io.read.short_reads");
    c.add();
    if (fault.bytes < content.size()) content.resize(fault.bytes);
  }
  return content;
}

void rename_file(const std::string& from, const std::string& to) {
  const FaultAction fault = FaultFs::instance().next("rename");
  if (fault.kind == FaultAction::Kind::kErrno) {
    count_fault_injected();
    static obs::Counter& c = obs::counter("io.rename.failures");
    c.add();
    throw_io_error("rename", from + " -> " + to, fault.error_number);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    static obs::Counter& c = obs::counter("io.rename.failures");
    c.add();
    throw_io_error("rename", from + " -> " + to, errno);
  }
}

bool try_rename(const std::string& from, const std::string& to) {
  const FaultAction fault = FaultFs::instance().next("rename");
  if (fault.kind == FaultAction::Kind::kErrno) {
    count_fault_injected();
    static obs::Counter& c = obs::counter("io.rename.failures");
    c.add();
    return false;
  }
  return ::rename(from.c_str(), to.c_str()) == 0;
}

void fsync_parent_dir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  Fd fd;
  fd.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd.fd < 0) return;  // e.g. a filesystem that refuses directory opens
  fsync_or_throw(fd.fd, dir);
}

}  // namespace minergy::io
