#include "io/fault_fs.h"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "util/strings.h"

namespace minergy::io {

namespace {

std::uint64_t parse_count(const std::string& text, const std::string& spec) {
  if (text.empty()) {
    throw std::invalid_argument("inject-io: missing call count in '" + spec +
                                "'");
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v == 0) {
    throw std::invalid_argument("inject-io: bad call count '" + text +
                                "' in '" + spec + "' (want a 1-based integer)");
  }
  return static_cast<std::uint64_t>(v);
}

std::size_t parse_bytes(const std::string& text, const std::string& spec) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0') {
    throw std::invalid_argument("inject-io: bad byte count '" + text +
                                "' in '" + spec + "'");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

FaultFs& FaultFs::instance() {
  static FaultFs fs;
  return fs;
}

void FaultFs::configure(const std::string& spec) {
  std::vector<Rule> rules;
  for (const std::string& part : util::split(spec, ',')) {
    const std::string directive{util::trim(part)};
    if (directive.empty()) continue;
    const std::size_t at = directive.find('@');
    const std::size_t colon = directive.find(':', at == std::string::npos
                                                        ? 0
                                                        : at + 1);
    if (at == std::string::npos || colon == std::string::npos) {
      throw std::invalid_argument(
          "inject-io: expected <op>@<N>:<effect>, got '" + directive + "'");
    }
    Rule rule;
    rule.op = directive.substr(0, at);
    if (rule.op != "write" && rule.op != "fsync" && rule.op != "rename" &&
        rule.op != "read") {
      throw std::invalid_argument("inject-io: unknown op '" + rule.op +
                                  "' in '" + directive +
                                  "' (want write|fsync|rename|read)");
    }
    rule.at = parse_count(directive.substr(at + 1, colon - at - 1), directive);
    const std::string effect = directive.substr(colon + 1);
    const std::size_t eq = effect.find('=');
    const std::string name =
        eq == std::string::npos ? effect : effect.substr(0, eq);
    const std::string arg =
        eq == std::string::npos ? std::string() : effect.substr(eq + 1);
    if (name == "enospc") {
      rule.action.kind = FaultAction::Kind::kErrno;
      rule.action.error_number = ENOSPC;
    } else if (name == "eio") {
      rule.action.kind = FaultAction::Kind::kErrno;
      rule.action.error_number = EIO;
    } else if (name == "tear") {
      rule.action.kind = FaultAction::Kind::kTear;
      rule.action.error_number = EIO;
      rule.action.bytes = parse_bytes(arg, directive);
    } else if (name == "tearcommit") {
      rule.action.kind = FaultAction::Kind::kTearCommit;
      rule.action.bytes = parse_bytes(arg, directive);
    } else if (name == "short") {
      rule.action.kind = FaultAction::Kind::kShortRead;
      rule.action.bytes = parse_bytes(arg, directive);
    } else {
      throw std::invalid_argument(
          "inject-io: unknown effect '" + effect + "' in '" + directive +
          "' (want enospc|eio|tear=K|tearcommit=K|short=K)");
    }
    if ((rule.action.kind == FaultAction::Kind::kTear ||
         rule.action.kind == FaultAction::Kind::kTearCommit) &&
        rule.op != "write") {
      throw std::invalid_argument("inject-io: '" + name +
                                  "' applies to write, not " + rule.op);
    }
    if (rule.action.kind == FaultAction::Kind::kShortRead &&
        rule.op != "read") {
      throw std::invalid_argument("inject-io: 'short' applies to read, not " +
                                  rule.op);
    }
    rules.push_back(std::move(rule));
  }
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = rules.empty() ? std::string() : spec;
  rules_ = std::move(rules);
  counts_.clear();
}

FaultAction FaultFs::next(const char* op) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rules_.empty()) return {};
  std::uint64_t* count = nullptr;
  for (auto& [name, n] : counts_) {
    if (name == op) {
      count = &n;
      break;
    }
  }
  if (count == nullptr) {
    counts_.emplace_back(op, 0);
    count = &counts_.back().second;
  }
  ++*count;
  for (Rule& rule : rules_) {
    if (!rule.fired && rule.op == op && rule.at == *count) {
      rule.fired = true;
      return rule.action;
    }
  }
  return {};
}

void FaultFs::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spec_.clear();
  rules_.clear();
  counts_.clear();
}

}  // namespace minergy::io
