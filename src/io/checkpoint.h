// Crash-safe, checksummed, generational checkpoint files.
//
// The durable successor of util::Checkpoint (which forwards here). A
// checkpoint is the JSON envelope
//
//   { "schema": "minergy.anneal_checkpoint.v1", "payload": { ... } }
//
// written via io::write_artifact — atomic temp/fsync/rename/fsync-parent
// plus a CRC32 footer — and kept for kGenerations snapshots:
//
//   path      newest
//   path.1    previous
//   path.2    previous-previous
//
// save() rotates generations best-effort (a failed rotation never blocks
// the new snapshot) before writing the new newest. load() tries newest
// first and falls back generation by generation when a snapshot fails
// envelope verification or schema checks, bumping the
// io.checkpoint.generation_fallback counter — a torn newest snapshot
// costs a few hundred optimizer moves of rework, not the whole run.
// Because optimizers only checkpoint *completed* steps, resuming from any
// older generation (or from scratch) reproduces the uninterrupted run
// bit-for-bit; fallback trades time, never correctness.
#pragma once

#include <string>

#include "util/json.h"

namespace minergy::io {

struct Checkpoint {
  // Snapshots kept per checkpoint path (newest + kGenerations-1 older).
  static constexpr int kGenerations = 3;

  // The on-disk name of generation g (g = 0 is `path` itself).
  static std::string generation_path(const std::string& path, int generation);

  // Rotates existing generations, then durably writes the new newest.
  // Throws io::IoError / io::DiskFullError on write failure (the previous
  // generations survive untouched).
  static void save(const std::string& path, const std::string& schema,
                   const std::string& payload_json);

  // Loads the newest generation that passes envelope verification, JSON
  // parsing, envelope-shape and schema checks; falls back generation by
  // generation. Rethrows the *newest* generation's error when every
  // generation fails (a missing file surfaces as util::ParseError "cannot
  // open file", matching the legacy contract for "no checkpoint yet").
  static util::JsonValue load(const std::string& path,
                              const std::string& expected_schema);

  // True when any generation exists on disk — "is there anything to
  // resume from?" without verifying it.
  static bool exists(const std::string& path);

  // Unlinks every generation plus a leftover temp file.
  static void remove(const std::string& path);
};

}  // namespace minergy::io
