// Durable whole-file writes and reads with typed storage errors.
//
// Every persisted artifact in the tree (checkpoints, spool job files,
// result envelopes, batch reports, run reports, health.json) goes through
// this one write path:
//
//   atomic_write_durable(path, content)
//     1. write path.tmp (O_TRUNC)
//     2. fsync(path.tmp)          — data reaches the platter before ...
//     3. rename(path.tmp, path)   — ... the name ever points at it
//     4. fsync(parent directory)  — the rename itself is durable
//
// A crash or power cut between any two steps leaves either the old file or
// the complete new file — never a torn one. Skipping step 2 is the classic
// lost-write bug: the rename commits a name whose blocks may never land
// (FaultFs's tearcommit effect simulates exactly that).
//
// Failures are typed, not stringly: ENOSPC/EDQUOT throw DiskFullError (the
// service maps it to admission backpressure and a degraded health state),
// everything else throws IoError carrying the op, path, and errno. Both
// paths unlink the temp file so a failed write leaves no litter.
//
// All syscalls consult io::FaultFs first, so tests can schedule the Nth
// write/fsync/rename to fail, tear, or short-read deterministically.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace minergy::io {

// A storage operation failed. `op` is the logical step ("write", "fsync",
// "rename", "read", "open"), `path` the file involved, `error_number` the
// errno (0 when the kernel did not supply one).
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& op, const std::string& path, int error_number);

  const std::string& op() const { return op_; }
  const std::string& path() const { return path_; }
  int error_number() const { return error_number_; }

 private:
  std::string op_;
  std::string path_;
  int error_number_;
};

// The disk (or quota) is full: ENOSPC / EDQUOT. Callers that can shed load
// (spool admission) or degrade gracefully (the supervisor) catch this
// subtype specifically.
class DiskFullError : public IoError {
 public:
  using IoError::IoError;
};

// Throws DiskFullError for ENOSPC/EDQUOT, IoError otherwise.
[[noreturn]] void throw_io_error(const std::string& op, const std::string& path,
                                 int error_number);

// The full temp → fsync → rename → fsync-parent protocol described above.
void atomic_write_durable(const std::string& path, std::string_view content);

// Whole-file read (FaultFs "read" op; a scheduled short=K delivers a
// truncated prefix, which the envelope verifier then classifies). Throws
// util::ParseError("cannot open file") on a missing file — same contract
// as the old util::read_file_or_throw so "no checkpoint yet" handling is
// unchanged — and IoError on a read that fails mid-flight.
std::string read_file_or_throw(const std::string& path);

// rename(2) with fault consultation; throws IoError on failure.
void rename_file(const std::string& from, const std::string& to);

// rename(2) returning success/failure instead of throwing — for claim-by-
// rename races where losing is normal. Injected rename faults report as
// failure (the caller treats it as a lost race and moves on).
bool try_rename(const std::string& from, const std::string& to);

// fsync the directory containing `path` (best effort on filesystems that
// refuse O_RDONLY directory fsync; throws IoError only on injected faults
// or genuine fsync failure).
void fsync_parent_dir(const std::string& path);

}  // namespace minergy::io
