#include "io/checkpoint.h"

#include <cstdio>
#include <exception>
#include <filesystem>
#include <system_error>

#include "io/durable.h"
#include "io/envelope.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace minergy::io {

namespace {

// The schema id a checkpoint carries both inside the JSON envelope and in
// the artifact footer, so either layer can reject a mismatched file.
util::JsonValue parse_checkpoint(const std::string& text,
                                 const std::string& path,
                                 const std::string& expected_schema) {
  const util::JsonValue root = util::JsonValue::parse(text, path);
  if (!root.is_object() || !root.has("schema") || !root.has("payload")) {
    throw util::ParseError("not a checkpoint envelope (schema/payload missing)",
                           path, 0);
  }
  const std::string& schema = root.at("schema").as_string();
  if (schema != expected_schema) {
    throw util::ParseError("checkpoint schema '" + schema +
                               "' does not match '" + expected_schema + "'",
                           path, 0);
  }
  return root.at("payload");
}

}  // namespace

std::string Checkpoint::generation_path(const std::string& path,
                                        int generation) {
  if (generation == 0) return path;
  return path + "." + std::to_string(generation);
}

void Checkpoint::save(const std::string& path, const std::string& schema,
                      const std::string& payload_json) {
  // Rotate older generations newest-last so path.1 always holds the
  // previous snapshot. Best-effort and deliberately outside FaultFs: a
  // failed rotation (missing source, injected storage fault) must never
  // block the new snapshot — generations are a recovery bonus, not a
  // durability requirement. The newest generation is *copied* into .1
  // rather than renamed, so there is no instant at which `path` itself is
  // absent: a SIGKILL mid-rotation can at worst leave .1 torn (which the
  // generation-by-generation loader rejects) while the previous snapshot
  // stays readable under its primary name until the atomic write_artifact
  // below replaces it.
  for (int g = kGenerations - 1; g >= 2; --g) {
    std::rename(generation_path(path, g - 1).c_str(),
                generation_path(path, g).c_str());
  }
  if (kGenerations >= 2) {
    std::error_code ec;
    std::filesystem::copy_file(path, generation_path(path, 1),
                               std::filesystem::copy_options::overwrite_existing,
                               ec);
  }
  std::string doc;
  doc.reserve(payload_json.size() + schema.size() + 32);
  doc += "{\"schema\":";
  doc += util::json_escape(schema);
  doc += ",\"payload\":";
  doc += payload_json;
  doc += "}";
  write_artifact(path, schema, doc);
}

util::JsonValue Checkpoint::load(const std::string& path,
                                 const std::string& expected_schema) {
  std::exception_ptr first_error;
  for (int g = 0; g < kGenerations; ++g) {
    const std::string gen_path = generation_path(path, g);
    try {
      const util::JsonValue payload = parse_checkpoint(
          read_artifact(gen_path, expected_schema), gen_path, expected_schema);
      if (g > 0) {
        static obs::Counter& fallback =
            obs::counter("io.checkpoint.generation_fallback");
        fallback.add();
        std::fprintf(stderr,
                     "checkpoint: %s rejected, resumed from generation %d "
                     "(%s)\n",
                     path.c_str(), g, gen_path.c_str());
      }
      return payload;
    } catch (const util::ParseError&) {
      // Covers IntegrityError (a subtype), JSON parse failures, envelope-
      // shape and schema mismatches, and a missing generation file.
      if (!first_error) first_error = std::current_exception();
    } catch (const IoError&) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  // Every generation failed: report the newest generation's verdict — it is
  // the most recent state and the most useful diagnosis.
  std::rethrow_exception(first_error);
}

bool Checkpoint::exists(const std::string& path) {
  std::error_code ec;
  for (int g = 0; g < kGenerations; ++g) {
    if (std::filesystem::exists(generation_path(path, g), ec)) return true;
  }
  return false;
}

void Checkpoint::remove(const std::string& path) {
  for (int g = 0; g < kGenerations; ++g) {
    std::remove(generation_path(path, g).c_str());
  }
  std::remove((path + ".tmp").c_str());
}

}  // namespace minergy::io
