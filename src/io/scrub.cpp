#include "io/scrub.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "io/checkpoint.h"
#include "io/durable.h"
#include "io/envelope.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/json.h"

namespace minergy::io {

namespace fs = std::filesystem;

namespace {

// Serve-layer schema ids, mirrored as literals (see header).
constexpr const char kJobSchema[] = "minergy.job.v1";
constexpr const char kResultSchema[] = "minergy.job_result.v1";
constexpr const char kHealthSchema[] = "minergy.health.v1";
constexpr const char kOverloadSchema[] = "minergy.overload.v1";
constexpr const char kQuotaSchema[] = "minergy.quota.v1";
constexpr const char kLeaseSchema[] = "minergy.lease.v1";

constexpr const char* kJobStates[] = {"pending", "running", "done", "failed",
                                      "quarantined"};

// Sorted regular-file names of one directory, skipping in-flight temp
// files (".tmp" suffix from atomic_write_durable, ".renew."/"lease.claim."
// interlocks from the lease protocol).
std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      continue;
    }
    if (name.rfind("lease.claim.", 0) == 0) continue;
    if (name.find(".renew.") != std::string::npos) continue;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

struct SpoolScrubber::Verdict {
  enum class State { kOk, kVanished, kDamaged };
  State state = State::kOk;
  std::string problem;  // set when damaged
  std::string detail;
  std::string bytes;  // raw file content when intact (for promotion)
};

SpoolScrubber::SpoolScrubber(std::string root, ScrubOptions opts)
    : root_(std::move(root)), opts_(opts) {}

std::string SpoolScrubber::quarantine_dir() const {
  return (fs::path(root_) / "scrub_quarantine").string();
}

SpoolScrubber::Verdict SpoolScrubber::verify_file(
    const std::string& path, const std::string& schema) const {
  Verdict v;
  std::string bytes;
  try {
    bytes = read_file_or_throw(path);
  } catch (const IoError& e) {
    v.state = Verdict::State::kDamaged;
    v.problem = "read";
    v.detail = e.what();
    return v;
  } catch (const util::ParseError&) {
    v.state = Verdict::State::kVanished;  // gone between list and read
    return v;
  }
  try {
    const std::string payload = unwrap_envelope(bytes, schema, path);
    const util::JsonValue doc = util::JsonValue::parse(payload, path);
    if (!doc.is_object() || !doc.has("schema")) {
      throw util::ParseError("payload has no schema field", path, 0);
    }
  } catch (const IntegrityError& e) {
    v.state = Verdict::State::kDamaged;
    switch (e.kind()) {
      case IntegrityError::Kind::kTruncated: v.problem = "truncated"; break;
      case IntegrityError::Kind::kCorrupt: v.problem = "corrupt"; break;
      case IntegrityError::Kind::kSchemaMismatch: v.problem = "schema"; break;
    }
    v.detail = e.what();
    return v;
  } catch (const util::ParseError& e) {
    v.state = Verdict::State::kDamaged;
    v.problem = "parse";
    v.detail = e.what();
    return v;
  }
  v.bytes = std::move(bytes);
  return v;
}

std::string SpoolScrubber::move_to_quarantine(const std::string& path) const {
  std::error_code ec;
  fs::create_directories(quarantine_dir(), ec);
  const std::string rel =
      fs::relative(fs::path(path), fs::path(root_), ec).string();
  std::string flat = ec ? fs::path(path).filename().string() : rel;
  std::replace(flat.begin(), flat.end(), '/', '_');
  std::string dest = (fs::path(quarantine_dir()) / flat).string();
  for (int n = 1; fs::exists(dest) && n < 1000; ++n) {
    dest = (fs::path(quarantine_dir()) / (flat + "." + std::to_string(n)))
               .string();
  }
  fs::rename(path, dest, ec);
  return ec ? std::string() : dest;
}

void SpoolScrubber::note(ScrubReport* report, ScrubFinding finding,
                         const char* outcome) {
  finding.action = outcome;
  obs::Event ev;
  if (finding.action == "repaired") {
    ++report->repaired;
    obs::counter("io.scrub.repaired").add();
    ev.kind = "scrub_repair";
    ev.severity = "info";
  } else if (finding.action == "quarantined") {
    ++report->quarantined;
    obs::counter("io.scrub.quarantined").add();
    ev.kind = "scrub_quarantine";
    ev.severity = "warn";
  } else {  // "reported": repair disabled
    ++report->quarantined;
    obs::counter("io.scrub.quarantined").add();
    ev.kind = "scrub_quarantine";
    ev.severity = "warn";
  }
  ev.detail = finding.problem + " " + finding.path +
              (finding.detail.empty() ? "" : ": " + finding.detail);
  obs::event(ev);
  report->findings.push_back(std::move(finding));
}

void SpoolScrubber::scrub_job_partition(const std::string& state,
                                        ScrubReport* report) {
  const std::string dir = (fs::path(root_) / state).string();
  for (const std::string& name : list_files(dir)) {
    const std::string path = (fs::path(dir) / name).string();
    const Verdict v = verify_file(path, kJobSchema);
    ++report->checked;
    if (v.state == Verdict::State::kOk) {
      ++report->clean;
      continue;
    }
    if (v.state == Verdict::State::kVanished) {
      ++report->vanished;
      continue;
    }
    ScrubFinding f;
    f.path = state + "/" + name;
    f.problem = v.problem;
    f.detail = v.detail;
    if (!opts_.repair) {
      note(report, std::move(f), "reported");
      continue;
    }
    const std::string dest = move_to_quarantine(path);
    if (dest.empty()) {
      ++report->vanished;  // lost the rename race with the live leader
      continue;
    }
    // A damaged job record is unrecoverable state: preserve its bytes and
    // pin the job id into a terminal partition so the spool's exactly-one-
    // terminal-state audit still holds.
    const std::string id =
        name.size() > 5 ? name.substr(0, name.size() - 5) : name;  // - .json
    bool present_elsewhere = false;
    for (const char* other : kJobStates) {
      if (other == state) continue;
      if (fs::exists(fs::path(root_) / other / (id + ".json"))) {
        present_elsewhere = true;
        break;
      }
    }
    if (!present_elsewhere) {
      util::JsonWriter w(2);
      w.begin_object();
      w.kv("schema", kJobSchema);
      w.kv("id", id);
      w.key("attempts").begin_array().end_array();
      w.key("failure").begin_object();
      w.kv("type", "scrub-quarantine");
      w.kv("detail", v.problem + " " + state + " record; bytes preserved in " +
                         dest);
      w.end_object();
      w.end_object();
      write_artifact((fs::path(root_) / "quarantined" / (id + ".json"))
                         .string(),
                     kJobSchema, w.str() + "\n");
    }
    f.detail = v.problem + " record moved to " + dest;
    note(report, std::move(f), "quarantined");
  }
}

void SpoolScrubber::scrub_results(ScrubReport* report) {
  const std::string dir = (fs::path(root_) / "results").string();
  for (const std::string& name : list_files(dir)) {
    const std::string path = (fs::path(dir) / name).string();
    const Verdict v = verify_file(path, kResultSchema);
    ++report->checked;
    if (v.state == Verdict::State::kOk) {
      ++report->clean;
      continue;
    }
    if (v.state == Verdict::State::kVanished) {
      ++report->vanished;
      continue;
    }
    ScrubFinding f;
    f.path = std::string("results/") + name;
    f.problem = v.problem;
    f.detail = v.detail;
    if (!opts_.repair) {
      note(report, std::move(f), "reported");
      continue;
    }
    // A result envelope is scratch: retiring a damaged one just makes the
    // attempt re-run (recovery sees "no envelope" and requeues), so this
    // is a repair, not a loss.
    const std::string dest = move_to_quarantine(path);
    if (dest.empty()) {
      ++report->vanished;
      continue;
    }
    f.detail = "retired damaged result envelope (attempt re-runs); bytes in " +
               dest;
    note(report, std::move(f), "repaired");
  }
}

void SpoolScrubber::scrub_checkpoints(ScrubReport* report) {
  const std::string dir = (fs::path(root_) / "checkpoints").string();
  // Generation files are <id>.json (newest), <id>.json.1, <id>.json.2;
  // group the family by its newest-generation name.
  std::set<std::string> bases;
  for (const std::string& name : list_files(dir)) {
    std::string base = name;
    for (int g = 1; g < Checkpoint::kGenerations; ++g) {
      const std::string suffix = "." + std::to_string(g);
      if (base.size() > suffix.size() &&
          base.compare(base.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        base = base.substr(0, base.size() - suffix.size());
        break;
      }
    }
    bases.insert(base);
  }
  for (const std::string& base : bases) {
    const std::string newest = (fs::path(dir) / base).string();
    // Verify every present generation; remember the newest intact one.
    // Checkpoint schemas vary by optimizer, so accept any schema ("").
    std::string promote_bytes;
    std::vector<std::pair<std::string, Verdict>> damaged;
    bool newest_ok = false;
    for (int g = 0; g < Checkpoint::kGenerations; ++g) {
      const std::string gpath = Checkpoint::generation_path(newest, g);
      if (!fs::exists(gpath)) continue;
      const Verdict v = verify_file(gpath, "");
      ++report->checked;
      if (v.state == Verdict::State::kOk) {
        ++report->clean;
        if (g == 0) newest_ok = true;
        if (promote_bytes.empty()) promote_bytes = v.bytes;
      } else if (v.state == Verdict::State::kVanished) {
        ++report->vanished;
      } else {
        damaged.emplace_back(gpath, v);
      }
    }
    for (auto& [gpath, v] : damaged) {
      ScrubFinding f;
      f.path = "checkpoints/" +
               fs::path(gpath).filename().string();
      f.problem = v.problem;
      f.detail = v.detail;
      if (!opts_.repair) {
        note(report, std::move(f), "reported");
        continue;
      }
      const bool was_newest = (gpath == newest);
      const std::string dest = move_to_quarantine(gpath);
      if (dest.empty()) {
        ++report->vanished;
        continue;
      }
      if (was_newest && !promote_bytes.empty()) {
        // Promote the newest intact older generation into the newest slot
        // so the resuming worker loads it directly (Checkpoint::load would
        // fall back anyway; promotion makes the family healthy again).
        atomic_write_durable(newest, promote_bytes);
        f.detail = "promoted intact older generation; damaged bytes in " +
                   dest;
        note(report, std::move(f), "repaired");
      } else if (!was_newest && (newest_ok || !promote_bytes.empty())) {
        f.detail = "retired damaged older generation; bytes in " + dest;
        note(report, std::move(f), "repaired");
      } else {
        f.detail = "no intact generation to promote (job restarts from "
                   "scratch); bytes in " +
                   dest;
        note(report, std::move(f), "quarantined");
      }
    }
  }
}

void SpoolScrubber::scrub_singleton(const std::string& name,
                                    const std::string& schema,
                                    ScrubReport* report) {
  const std::string path = (fs::path(root_) / name).string();
  if (!fs::exists(path)) return;
  const Verdict v = verify_file(path, schema);
  ++report->checked;
  if (v.state == Verdict::State::kOk) {
    ++report->clean;
    return;
  }
  if (v.state == Verdict::State::kVanished) {
    ++report->vanished;
    return;
  }
  ScrubFinding f;
  f.path = name;
  f.problem = v.problem;
  f.detail = v.detail;
  if (!opts_.repair) {
    note(report, std::move(f), "reported");
    return;
  }
  // health/overload/lease documents are republished by the daemon within
  // one control-loop tick (and admission fails open without a policy), so
  // retiring a damaged one is a repair.
  const std::string dest = move_to_quarantine(path);
  if (dest.empty()) {
    ++report->vanished;
    return;
  }
  f.detail = "retired damaged " + name + " (daemon republishes); bytes in " +
             dest;
  note(report, std::move(f), "repaired");
}

void SpoolScrubber::scrub_quota(ScrubReport* report) {
  const std::string dir = (fs::path(root_) / "quota").string();
  if (!fs::exists(dir)) return;
  for (const std::string& name : list_files(dir)) {
    const std::string path = (fs::path(dir) / name).string();
    const Verdict v = verify_file(path, kQuotaSchema);
    ++report->checked;
    if (v.state == Verdict::State::kOk) {
      ++report->clean;
      continue;
    }
    if (v.state == Verdict::State::kVanished) {
      ++report->vanished;
      continue;
    }
    ScrubFinding f;
    f.path = std::string("quota/") + name;
    f.problem = v.problem;
    f.detail = v.detail;
    if (!opts_.repair) {
      note(report, std::move(f), "reported");
      continue;
    }
    const std::string dest = move_to_quarantine(path);
    if (dest.empty()) {
      ++report->vanished;
      continue;
    }
    f.detail = "retired damaged quota bucket (resets on next admission); "
               "bytes in " +
               dest;
    note(report, std::move(f), "repaired");
  }
}

ScrubReport SpoolScrubber::run() {
  ScrubReport report;
  for (const char* state : kJobStates) {
    scrub_job_partition(state, &report);
  }
  scrub_results(&report);
  scrub_checkpoints(&report);
  scrub_singleton("health.json", kHealthSchema, &report);
  scrub_singleton("overload.json", kOverloadSchema, &report);
  scrub_singleton("leader.lease", kLeaseSchema, &report);
  scrub_quota(&report);

  obs::counter("io.scrub.passes").add();
  obs::counter("io.scrub.files_checked").add(report.checked);
  obs::counter("io.scrub.clean").add(report.clean);
  obs::counter("io.scrub.vanished").add(report.vanished);
  obs::Event ev;
  ev.kind = "scrub_pass";
  ev.severity = report.quarantined > 0 ? "warn" : "info";
  ev.detail = "spool " + root_;
  ev.num.emplace_back("checked", static_cast<double>(report.checked));
  ev.num.emplace_back("clean", static_cast<double>(report.clean));
  ev.num.emplace_back("repaired", static_cast<double>(report.repaired));
  ev.num.emplace_back("quarantined", static_cast<double>(report.quarantined));
  ev.num.emplace_back("vanished", static_cast<double>(report.vanished));
  obs::event(ev);
  return report;
}

}  // namespace minergy::io
