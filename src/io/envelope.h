// Checksummed artifact envelopes.
//
// Every persisted JSON artifact gets a one-line self-describing footer
// appended after the payload:
//
//   {"schema":"minergy.job.v1", ... }
//   #MINERGY1 schema=minergy.job.v1 len=0000000042 crc32=9ae0daaf
//
// The footer carries a magic ("#MINERGY1"), the artifact's schema id, the
// exact payload byte length (including the payload's trailing newline), and
// the payload's CRC32 (IEEE 802.3 polynomial). A reader can therefore tell
// apart the three ways a file read lies:
//
//   truncation       the footer line is missing/cut, or len exceeds what
//                    was read — a torn write or a short read
//   bit-rot          len matches but the CRC does not — flipped bits
//   schema mismatch  an intact artifact of the wrong kind
//
// Each is a distinct IntegrityError::Kind. IntegrityError derives from
// util::ParseError, so every pre-existing corrupt-artifact handler (spool
// quarantine, checkpoint resume rejection) handles envelope verdicts with
// no code change — they just become *reliable*: before this layer, a
// truncated-but-still-parseable JSON prefix sailed through as a valid
// artifact.
//
// Fixed-width len/crc fields make the footer length independent of its
// values, and the payload's own trailing newline keeps `head -n -1` /
// text tools working on enveloped files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/check.h"

namespace minergy::io {

inline constexpr std::string_view kEnvelopeMagic = "#MINERGY1 ";

// A persisted artifact failed envelope verification.
class IntegrityError : public util::ParseError {
 public:
  enum class Kind { kTruncated, kCorrupt, kSchemaMismatch };

  IntegrityError(Kind kind, const std::string& what, const std::string& file);

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

// CRC32 (IEEE 802.3, polynomial 0xEDB88320), the zlib/PNG convention.
std::uint32_t crc32(std::string_view data);

// payload (newline-terminated; one is appended if missing) + footer line.
std::string wrap_envelope(std::string_view payload, std::string_view schema);

// True when `text` ends in a line starting with the envelope magic — used
// by readers that accept both enveloped and legacy bare artifacts.
bool has_envelope_footer(std::string_view text);

// Verifies the footer and returns the payload (footer stripped, payload's
// trailing newline kept). Throws IntegrityError: kTruncated for a missing/
// malformed/cut footer or a payload shorter than the footer's len, kCorrupt
// for a CRC mismatch, kSchemaMismatch when `expected_schema` is non-empty
// and differs from the footer's schema. Pass "" to accept any schema.
std::string unwrap_envelope(std::string_view text,
                            std::string_view expected_schema,
                            const std::string& path);

// read_file_or_throw + unwrap_envelope: the one-call verified read.
std::string read_artifact(const std::string& path,
                          std::string_view expected_schema);

// wrap_envelope + atomic_write_durable: the one-call verified write.
void write_artifact(const std::string& path, std::string_view schema,
                    std::string_view payload);

}  // namespace minergy::io
