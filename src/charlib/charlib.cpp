#include "charlib/charlib.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace minergy::charlib {

std::string cell_name(const CellSpec& spec) {
  if (!spec.name.empty()) return spec.name;
  std::string base(netlist::to_string(spec.type));
  char buf[48];
  if (spec.fanin >= 2) {
    std::snprintf(buf, sizeof buf, "%s%d_W%.0f", base.c_str(), spec.fanin,
                  spec.width);
  } else {
    std::snprintf(buf, sizeof buf, "%s_W%.0f", base.c_str(), spec.width);
  }
  return buf;
}

std::string liberty_function(netlist::GateType type, int fanin) {
  using netlist::GateType;
  auto join = [&](const char* op, bool invert) {
    std::string inner;
    for (int i = 0; i < fanin; ++i) {
      if (i) inner += std::string(" ") + op + " ";
      inner += "A" + std::to_string(i);
    }
    if (fanin == 1) inner = "A0";
    return invert ? "!(" + inner + ")" : "(" + inner + ")";
  };
  switch (type) {
    case GateType::kBuf: return "(A0)";
    case GateType::kNot: return "!(A0)";
    case GateType::kAnd: return join("*", false);
    case GateType::kNand: return join("*", true);
    case GateType::kOr: return join("+", false);
    case GateType::kNor: return join("+", true);
    case GateType::kXor: return join("^", false);
    case GateType::kXnor: return join("^", true);
    default:
      MINERGY_CHECK_MSG(false, "no Liberty function for this type");
      return "";
  }
}

Characterizer::Characterizer(const tech::DeviceModel& dev, double vdd,
                             double vts)
    : dev_(dev), vdd_(vdd), vts_(vts) {
  MINERGY_CHECK(vdd > 0.0);
  MINERGY_CHECK(vts > 0.0);
}

double Characterizer::cell_delay(const CellSpec& spec, double slew,
                                 double load) const {
  MINERGY_CHECK(spec.fanin >= 1);
  MINERGY_CHECK(spec.width > 0.0);
  const double w = spec.width;
  const double fin = static_cast<double>(spec.fanin);
  const double self =
      w * (dev_.cpar_per_wunit() + (fin - 1.0) * dev_.cmid_per_wunit());
  const double drive =
      w * (dev_.idrive_per_wunit(vdd_, vts_) /
               tech::DeviceModel::stack_factor(spec.fanin) -
           fin * dev_.ioff_per_wunit(vts_));
  MINERGY_CHECK_MSG(drive > 0.0, "cell cannot sink its own leakage");
  // Slope term: the Eq. A3 coefficient applied to the driving stage's
  // delay, which the slew approximates as twice that delay.
  const double slope = dev_.slope_coefficient(vdd_, vts_) * 0.5 * slew;
  return slope + 0.5 * vdd_ * (self + load) / drive;
}

CellData Characterizer::characterize(const CellSpec& spec,
                                     const std::vector<double>& slews,
                                     const std::vector<double>& loads) const {
  MINERGY_CHECK(!slews.empty() && !loads.empty());
  CellData cell;
  cell.spec = spec;
  cell.name = cell_name(spec);
  cell.input_cap = spec.width * dev_.cin_per_wunit();
  cell.leakage_power = vdd_ * spec.width * dev_.ioff_per_wunit(vts_);
  // Area proxy: total device width, N plus beta-scaled P, per input leg.
  cell.area = spec.width * (1.0 + dev_.technology().beta_ratio) *
              static_cast<double>(std::max(spec.fanin, 1));
  cell.timing.slews = slews;
  cell.timing.loads = loads;
  cell.timing.delay.resize(slews.size());
  cell.timing.transition.resize(slews.size());
  for (std::size_t i = 0; i < slews.size(); ++i) {
    cell.timing.delay[i].resize(loads.size());
    cell.timing.transition[i].resize(loads.size());
    for (std::size_t j = 0; j < loads.size(); ++j) {
      const double d = cell_delay(spec, slews[i], loads[j]);
      cell.timing.delay[i][j] = d;
      // Output edge rate tracks the cell's own switching delay (the slope
      // contribution does not steepen the output).
      cell.timing.transition[i][j] =
          2.0 * cell_delay(spec, 0.0, loads[j]);
    }
  }
  return cell;
}

CellData Characterizer::characterize(const CellSpec& spec) const {
  const double cin = spec.width * dev_.cin_per_wunit();
  std::vector<double> loads, slews;
  for (double k : {1.0, 2.0, 4.0, 8.0, 16.0}) loads.push_back(k * cin);
  const double d0 = cell_delay(spec, 0.0, 4.0 * cin);
  for (double k : {0.25, 0.5, 1.0, 2.0, 4.0}) slews.push_back(k * 2.0 * d0);
  return characterize(spec, slews, loads);
}

namespace {

void emit_lut(std::ostringstream& os, const char* group,
              const Lut& lut, bool transition) {
  os << "      " << group << " (delay_template) {\n";
  auto emit_index = [&](const char* name, const std::vector<double>& v,
                        double scale) {
    os << "        " << name << " (\"";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) os << ", ";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", v[i] * scale);
      os << buf;
    }
    os << "\");\n";
  };
  emit_index("index_1", lut.slews, 1e9);   // ns
  emit_index("index_2", lut.loads, 1e12);  // pF
  os << "        values ( \\\n";
  const auto& grid = transition ? lut.transition : lut.delay;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    os << "          \"";
    for (std::size_t j = 0; j < grid[i].size(); ++j) {
      if (j) os << ", ";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", grid[i][j] * 1e9);
      os << buf;
    }
    os << "\"" << (i + 1 == grid.size() ? " \\\n" : ", \\\n");
  }
  os << "        );\n      }\n";
}

}  // namespace

std::string export_liberty(const std::string& library_name,
                           const Characterizer& chr,
                           const std::vector<CellData>& cells) {
  std::ostringstream os;
  os << "/* generated by minergy at Vdd=" << chr.vdd()
     << "V, Vts=" << chr.vts() << "V */\n";
  os << "library (" << library_name << ") {\n";
  os << "  delay_model : table_lookup;\n";
  os << "  time_unit : \"1ns\";\n";
  os << "  voltage_unit : \"1V\";\n";
  os << "  current_unit : \"1mA\";\n";
  os << "  capacitive_load_unit (1, pf);\n";
  os << "  leakage_power_unit : \"1nW\";\n";
  os << "  nom_voltage : " << chr.vdd() << ";\n";
  os << "  nom_temperature : 27;\n";
  os << "  nom_process : 1;\n";
  os << "  lu_table_template (delay_template) {\n";
  os << "    variable_1 : input_net_transition;\n";
  os << "    variable_2 : total_output_net_capacitance;\n";
  os << "  }\n";

  for (const CellData& cell : cells) {
    os << "  cell (" << cell.name << ") {\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4g", cell.area);
    os << "    area : " << buf << ";\n";
    std::snprintf(buf, sizeof buf, "%.6g", cell.leakage_power * 1e9);
    os << "    cell_leakage_power : " << buf << ";\n";
    const int fanin = std::max(cell.spec.fanin, 1);
    for (int i = 0; i < fanin; ++i) {
      std::snprintf(buf, sizeof buf, "%.6g", cell.input_cap * 1e12);
      os << "    pin (A" << i << ") {\n"
         << "      direction : input;\n"
         << "      capacitance : " << buf << ";\n"
         << "    }\n";
    }
    os << "    pin (Y) {\n";
    os << "      direction : output;\n";
    os << "      function : \"" << liberty_function(cell.spec.type, fanin)
       << "\";\n";
    os << "      timing () {\n";
    os << "      related_pin : \"";
    for (int i = 0; i < fanin; ++i) os << (i ? " " : "") << "A" << i;
    os << "\";\n";
    emit_lut(os, "cell_rise", cell.timing, false);
    emit_lut(os, "cell_fall", cell.timing, false);
    emit_lut(os, "rise_transition", cell.timing, true);
    emit_lut(os, "fall_transition", cell.timing, true);
    os << "      }\n    }\n  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace minergy::charlib
