// Cell characterization and Liberty (.lib) export.
//
// The optimizer picks a continuous (Vdd, Vts, w) point per design; to hand
// the result to a conventional flow one needs a characterized library *at
// that operating point*. This module builds lookup-table models — delay and
// output transition vs. (input slew, output load) — from the same
// transregional device model the optimizer used, plus leakage and pin
// capacitance, and serializes them in Liberty syntax.
#pragma once

#include <string>
#include <vector>

#include "netlist/gate.h"
#include "tech/device_model.h"

namespace minergy::charlib {

struct CellSpec {
  netlist::GateType type = netlist::GateType::kNand;
  int fanin = 2;
  double width = 4.0;  // w, feature-size units
  std::string name;    // defaults to e.g. "NAND2_W4"
};

struct Lut {
  std::vector<double> slews;  // s, index_1
  std::vector<double> loads;  // F, index_2
  // values[slew][load]
  std::vector<std::vector<double>> delay;       // s
  std::vector<std::vector<double>> transition;  // s
};

struct CellData {
  CellSpec spec;
  std::string name;
  double input_cap = 0.0;       // F per input pin
  double leakage_power = 0.0;   // W
  double area = 0.0;            // feature-size^2 units (proxy)
  Lut timing;
};

class Characterizer {
 public:
  // Operating point shared by the whole library.
  Characterizer(const tech::DeviceModel& dev, double vdd, double vts);

  double vdd() const { return vdd_; }
  double vts() const { return vts_; }

  // Closed-form delay of the cell driving `load` with input slew `slew`.
  double cell_delay(const CellSpec& spec, double slew, double load) const;

  CellData characterize(const CellSpec& spec,
                        const std::vector<double>& slews,
                        const std::vector<double>& loads) const;

  // A default 5x5 grid scaled to the cell's own drive (loads from 1x to
  // ~16x its input capacitance; slews around its unloaded delay).
  CellData characterize(const CellSpec& spec) const;

 private:
  const tech::DeviceModel& dev_;
  double vdd_, vts_;
};

// Liberty serialization. Cells must share the Characterizer's operating
// point (nom_voltage etc. come from it).
std::string export_liberty(const std::string& library_name,
                           const Characterizer& chr,
                           const std::vector<CellData>& cells);

// Boolean function string for a cell's output pin ("!(A0 A1)", ...).
std::string liberty_function(netlist::GateType type, int fanin);

// Canonical cell name ("NAND2_W4").
std::string cell_name(const CellSpec& spec);

}  // namespace minergy::charlib
