#include "tech/body_bias.h"

#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace minergy::tech {

void BodyBiasParams::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("BodyBiasParams: ") + what);
  };
  require(gamma > 0.0 && gamma < 2.0, "gamma out of range");
  require(phi_f > 0.1 && phi_f < 0.6, "phi_f out of range");
  require(vt0_nmos > -0.2 && vt0_nmos < 1.0, "vt0_nmos out of range");
  require(vt0_pmos > -0.2 && vt0_pmos < 1.0, "vt0_pmos out of range");
  require(max_reverse_bias > 0.0, "max_reverse_bias must be positive");
  require(max_forward_bias >= 0.0 && max_forward_bias < 0.6,
          "forward bias must stay below the diode drop");
}

BodyBiasCalculator::BodyBiasCalculator(const BodyBiasParams& params)
    : params_(params) {
  params_.validate();
}

double BodyBiasCalculator::vt_at_bias(double vt0, double vsb) const {
  const double two_phi = 2.0 * params_.phi_f;
  MINERGY_CHECK_MSG(two_phi + vsb > 0.0,
                    "forward bias beyond the body-effect model's validity");
  return vt0 +
         params_.gamma * (std::sqrt(two_phi + vsb) - std::sqrt(two_phi));
}

BiasSolution BodyBiasCalculator::bias_for_target(double vt0,
                                                 double target_vt) const {
  const double two_phi = 2.0 * params_.phi_f;
  // Invert Vt(Vsb): sqrt(2phi + vsb) = (target - vt0)/gamma + sqrt(2phi).
  const double root = (target_vt - vt0) / params_.gamma + std::sqrt(two_phi);
  BiasSolution s;
  if (root <= 0.0) {
    // Target unreachably below vt0 even at the strongest forward bias the
    // model admits; clamp to the diode limit.
    s.vsb = -params_.max_forward_bias;
  } else {
    s.vsb = root * root - two_phi;
  }
  s.vsb = std::min(s.vsb, params_.max_reverse_bias);
  s.vsb = std::max(s.vsb, -params_.max_forward_bias);
  s.sensitivity =
      0.5 * params_.gamma / std::sqrt(std::max(two_phi + s.vsb, 1e-9));
  // Safe iff the clamps did not bind (the exact target is realizable).
  const double achieved = vt_at_bias(vt0, s.vsb);
  s.in_safe_range = std::fabs(achieved - target_vt) < 1e-6;
  return s;
}

BiasSolution BodyBiasCalculator::nmos_substrate_bias(double target_vtn) const {
  return bias_for_target(params_.vt0_nmos, target_vtn);
}

BiasSolution BodyBiasCalculator::pmos_well_bias(double target_vtp) const {
  return bias_for_target(params_.vt0_pmos, target_vtp);
}

double BodyBiasCalculator::substrate_rail(double target_vtn) const {
  return -nmos_substrate_bias(target_vtn).vsb;
}

double BodyBiasCalculator::nwell_rail(double target_vtp, double vdd) const {
  return vdd + pmos_well_bias(target_vtp).vsb;
}

}  // namespace minergy::tech
