#include "tech/technology.h"

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace minergy::tech {

double Technology::thermal_vt() const {
  return util::thermal_voltage(temperature);
}

void Technology::validate() const {
  auto require = [this](bool ok, const char* what) {
    if (!ok) {
      throw TechnologyError("Technology '" + name + "': " + what);
    }
  };
  // Every numeric field must be finite: a single NaN or infinity here
  // otherwise rides through the delay/energy models unchecked. (The range
  // checks below reject NaN too — all comparisons with NaN are false — but
  // infinities satisfy one-sided bounds, so the finite check is explicit.)
  const double numeric_fields[] = {
      feature_size,  channel_length,   alpha,
      pc,            n_sub,            temperature,
      junction_leak_per_w,             blend_overdrive_factor,
      leakage_scale, beta_ratio,       cgate_per_w,
      cpar_per_w,    cmid_per_w,       wire_cap_per_len,
      wire_res_per_len,                flight_velocity,
      gate_pitch,    rent_exponent,    rent_k,
      vdd_min,       vdd_max,          vts_min,
      vts_max,       w_min,            w_max,
      clock_skew_b,  po_load_w,        nominal_vdd,
      nominal_vts};
  for (double v : numeric_fields) {
    require(std::isfinite(v), "all parameters must be finite");
  }
  require(feature_size > 0, "feature_size must be positive");
  require(feature_size <= 1e-4, "feature_size must be below 100 um");
  require(channel_length > 0, "channel_length must be positive");
  require(alpha >= 1.0 && alpha <= 2.0, "alpha must be in [1, 2]");
  require(pc > 0, "pc must be positive");
  require(n_sub >= 1.0 && n_sub <= 3.0, "n_sub must be in [1, 3]");
  require(temperature > 0 && temperature <= 1000,
          "temperature must be in (0, 1000] K");
  require(junction_leak_per_w >= 0, "junction leakage must be >= 0");
  require(leakage_scale > 0, "leakage_scale must be positive");
  require(blend_overdrive_factor > 0, "blend factor must be positive");
  require(beta_ratio > 0, "beta_ratio must be positive");
  require(cgate_per_w > 0 && cpar_per_w > 0 && cmid_per_w >= 0,
          "capacitances must be positive");
  require(wire_cap_per_len > 0 && wire_res_per_len >= 0,
          "wire parasitics must be positive");
  require(flight_velocity > 0, "flight velocity must be positive");
  require(gate_pitch > 0, "gate pitch must be positive");
  require(rent_exponent > 0 && rent_exponent < 1,
          "Rent exponent must be in (0, 1)");
  require(rent_k > 1, "Rent k must exceed 1");
  require(vdd_min > 0 && vdd_min < vdd_max, "bad Vdd range");
  require(vdd_max <= 20.0, "Vdd range exceeds 20 V (corrupt tech file?)");
  require(vts_min > 0 && vts_min < vts_max, "bad Vts range");
  require(vts_max < vdd_max, "Vts range must lie below vdd_max");
  require(w_min >= 1.0 && w_min < w_max, "bad width range");
  require(clock_skew_b > 0 && clock_skew_b <= 1.0, "bad clock skew factor");
  require(po_load_w >= 0, "PO load must be >= 0");
  require(nominal_vdd > 0 && nominal_vts > 0, "bad nominal point");
  require(nominal_vdd <= 20.0 && nominal_vts <= 20.0,
          "nominal point exceeds 20 V (corrupt tech file?)");
}

Technology Technology::generic350() {
  Technology t;  // defaults are the 0.35 um preset
  t.name = "generic350";
  return t;
}

Technology Technology::generic250() {
  Technology t;
  t.name = "generic250";
  t.feature_size = 0.25e-6;
  t.channel_length = 0.25e-6;
  t.pc = 190.0;            // stronger drive per width
  t.cgate_per_w = 1.6e-9;  // thinner oxide but shorter channel
  t.cpar_per_w = 1.0e-9;
  t.cmid_per_w = 0.7e-9;
  t.gate_pitch = 5.0e-6;
  t.vdd_max = 2.5;
  t.nominal_vdd = 2.5;
  t.nominal_vts = 0.55;
  t.vts_max = 0.55;
  return t;
}

Technology Technology::generic500() {
  Technology t;
  t.name = "generic500";
  t.feature_size = 0.5e-6;
  t.channel_length = 0.5e-6;
  t.pc = 110.0;
  t.cgate_per_w = 2.2e-9;
  t.cpar_per_w = 1.5e-9;
  t.cmid_per_w = 1.0e-9;
  t.gate_pitch = 10.0e-6;
  t.vdd_max = 5.0;
  t.nominal_vdd = 5.0;
  t.nominal_vts = 0.8;
  t.vts_max = 0.8;
  return t;
}

Technology Technology::by_name(const std::string& name) {
  if (name == "generic350") return generic350();
  if (name == "generic250") return generic250();
  if (name == "generic500") return generic500();
  throw std::invalid_argument("unknown technology preset: " + name);
}

}  // namespace minergy::tech
