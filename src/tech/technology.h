// Process-technology description.
//
// The paper targets a mid-1990s CMOS process with a 3.3 V nominal supply and
// a 700 mV nominal threshold; the joint optimizer explores Vdd in
// [0.1, 3.3] V, Vts in [0.1, 0.7] V and widths w in [1, 100] multiples of
// the minimum feature size F (Procedure 2). All parameters here are in SI
// units; per-width quantities are per meter of device width.
#pragma once

#include <stdexcept>
#include <string>

namespace minergy::tech {

// Thrown by Technology::validate() on non-physical parameters. Derives from
// std::invalid_argument so pre-existing catch sites keep working.
class TechnologyError : public std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

struct Technology {
  std::string name = "generic350";

  // --- Lithography / geometry -------------------------------------------
  double feature_size = 0.35e-6;  // F (m); device widths are w * F
  double channel_length = 0.35e-6;  // Leff (m)

  // --- MOSFET drive (alpha-power law, Sakurai–Newton) --------------------
  // Saturation current per meter of NMOS width:
  //   Id = pc * (Vgs - Vts)^alpha    [A/m], superthreshold
  // extended into subthreshold with slope factor n_sub (see DeviceModel).
  double alpha = 1.1;          // velocity-saturation index (quasi-ballistic transport)
  double pc = 175.0;           // A/(m * V^alpha)
  double n_sub = 1.4;          // subthreshold slope factor
  double temperature = 300.0;  // K
  double junction_leak_per_w = 1.0e-10;  // A/m, drain-junction leakage
  // Blend point between sub- and superthreshold regions, in units of n*vT.
  double blend_overdrive_factor = 2.0;
  // Aggregate multiplier on subthreshold off-current: accounts for the
  // leakage paths the single-device extrapolation misses (both N and P
  // networks leak in one of the two output states, multiple parallel
  // devices per network, DIBL at full-rail Vds, and elevated junction
  // temperature). Calibrated so that the joint optimum lands at the
  // paper's interior Vts (120-200 mV) with comparable static/dynamic
  // components.
  double leakage_scale = 8.0;

  // --- Capacitances (per meter of NMOS width; PMOS is beta_ratio wider) --
  double beta_ratio = 2.0;       // Wp / Wn for symmetric rise/fall
  double cgate_per_w = 1.9e-9;   // gate-input cap of one device (F/m)
  double cpar_per_w = 1.2e-9;    // drain junction+overlap+fringe (F/m)
  double cmid_per_w = 0.8e-9;    // series-stack intermediate node (F/m)

  // --- Interconnect -------------------------------------------------------
  double wire_cap_per_len = 0.30e-9;  // F/m (0.3 fF/um incl. coupling)
  double wire_res_per_len = 0.08e6;   // Ohm/m (0.08 Ohm/um)
  double flight_velocity = 1.5e8;     // m/s, signal time-of-flight
  double gate_pitch = 15.0e-6;        // m, average placed-gate pitch
  double rent_exponent = 0.60;        // Rent's-rule p for random logic
  double rent_k = 3.5;                // average pins per gate

  // --- Optimization variable ranges (Procedure 2) -------------------------
  double vdd_min = 0.1, vdd_max = 3.3;  // V
  double vts_min = 0.1, vts_max = 0.7;  // V
  double w_min = 1.0, w_max = 100.0;    // multiples of F

  // --- System assumptions --------------------------------------------------
  double clock_skew_b = 0.95;  // b <= 1 in Eq. (1)
  double po_load_w = 4.0;      // primary-output load, in equivalent input-w units
  double nominal_vdd = 3.3;    // V, conventional-design reference
  double nominal_vts = 0.7;    // V, conventional-design reference

  // Thermal voltage kT/q for this technology's temperature.
  double thermal_vt() const;
  // n * kT/q, the subthreshold exponential scale.
  double nvt() const { return n_sub * thermal_vt(); }

  // Throws TechnologyError (a std::invalid_argument) if any parameter is
  // non-finite or non-physical; every numeric field is checked.
  void validate() const;

  // Named presets.
  static Technology generic350();  // default 0.35 um, paper-era process
  static Technology generic250();  // scaled 0.25 um variant
  static Technology generic500();  // relaxed 0.5 um variant
  // Lookup by name ("generic350", ...); throws on unknown name.
  static Technology by_name(const std::string& name);
};

}  // namespace minergy::tech
