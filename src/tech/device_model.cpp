#include "tech/device_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minergy::tech {

DeviceModel::DeviceModel(const Technology& tech) : tech_(tech) {
  tech_.validate();
  vov0_ = tech_.blend_overdrive_factor * tech_.nvt();
  i_at_vov0_ = super_current(vov0_);
  const double width_total = (1.0 + tech_.beta_ratio) * tech_.feature_size;
  cin_ = tech_.cgate_per_w * width_total;
  cpar_ = tech_.cpar_per_w * width_total;
  cmid_ = tech_.cmid_per_w * width_total;
}

double DeviceModel::super_current(double vov) const {
  return tech_.pc * tech_.feature_size * std::pow(vov, tech_.alpha);
}

double DeviceModel::idrive_per_wunit(double vdd, double vts) const {
  MINERGY_CHECK(vdd > 0.0);
  const double vov = vdd - vts;
  if (vov >= vov0_) return super_current(vov);
  // Exponential subthreshold tail, continuous at vov0 with the correct
  // slope 1/(n*vT) per decade of e.
  return i_at_vov0_ * std::exp((vov - vov0_) / tech_.nvt());
}

double DeviceModel::ioff_per_wunit(double vts) const {
  // Vgs = 0 => overdrive -vts, always in the exponential region for any
  // positive threshold. Both the N pull-down and the (beta-wider) P pull-up
  // leak in one of the two output states; averaged over states the total
  // leaking width is (1 + beta)/2 * (w_n + w_p)... we keep the paper's
  // simple linear-in-w form and fold the device-count factor into the
  // per-wunit coefficient.
  const double isub = tech_.leakage_scale * i_at_vov0_ *
                      std::exp((-vts - vov0_) / tech_.nvt());
  const double ijunc =
      tech_.junction_leak_per_w * (1.0 + tech_.beta_ratio) * tech_.feature_size;
  return isub + ijunc;
}

double DeviceModel::slope_coefficient(double vdd, double vts) const {
  MINERGY_CHECK(vdd > 0.0);
  const double ratio = std::clamp(vts / vdd, 0.0, 1.0);
  const double k = 0.5 - (1.0 - ratio) / (1.0 + tech_.alpha);
  return std::clamp(k, 0.0, 0.5);
}

double DeviceModel::stack_factor(int fanin) {
  return fanin <= 1 ? 1.0 : static_cast<double>(fanin);
}

}  // namespace minergy::tech
