// Transregional MOSFET model (Appendix A.2 of the paper).
//
// Drive current follows the Sakurai–Newton alpha-power law in strong
// inversion and is extended with an exponential subthreshold tail below a
// small overdrive Vov0 = blend_overdrive_factor * n * vT, so the model is
// continuous and strictly monotone across the sub/superthreshold boundary
// ("transregional"). This is what lets the optimizer push Vdd at or below
// Vts when the delay budget allows subthreshold switching.
//
// All *_per_wunit quantities are expressed per dimensionless width unit
// w (the paper's convention: device width = w * F); the factors of F and
// of the PMOS beta-ratio are folded in here so downstream code never
// handles meters of width.
#pragma once

#include "tech/technology.h"

namespace minergy::tech {

class DeviceModel {
 public:
  explicit DeviceModel(const Technology& tech);

  const Technology& technology() const { return tech_; }

  // --- Currents (A per width unit w) -------------------------------------
  // Switching drain current at gate/drain voltage vdd, threshold vts.
  // Continuous, strictly increasing in vdd, strictly decreasing in vts.
  double idrive_per_wunit(double vdd, double vts) const;

  // Off-state (Vgs = 0) leakage: subthreshold conduction + junction leakage.
  // Strictly decreasing in vts. Both N and P leakage paths are included via
  // the (1 + beta) total leaking width.
  double ioff_per_wunit(double vts) const;

  // Subthreshold boundary overdrive Vov0 (V).
  double blend_overdrive() const { return vov0_; }

  // --- Capacitances (F per width unit w) ----------------------------------
  // Gate-input capacitance of one logic input (NMOS + PMOS gates).
  double cin_per_wunit() const { return cin_; }
  // Output-node parasitic (drain junction + overlap + fringe, N + P).
  double cpar_per_wunit() const { return cpar_; }
  // Intermediate node of a series stack.
  double cmid_per_wunit() const { return cmid_; }

  // --- Delay-model coefficients -------------------------------------------
  // Input-slope coefficient of Eq. (A3): the fraction of the slowest fanin
  // delay that adds to this gate's delay,
  //   k_slope = 1/2 - (1 - vts/vdd) / (1 + alpha),
  // clamped to [0, 1/2]; increasing in vts/vdd (slow input edges hurt more
  // when the gate switches late in the swing).
  double slope_coefficient(double vdd, double vts) const;

  // Worst-case series-stack current-division factor for a gate with
  // fanin inputs (INV/BUF = 1, n-input NAND/NOR = n).
  static double stack_factor(int fanin);

 private:
  double super_current(double vov) const;  // pc*F*(vov)^alpha per w unit

  Technology tech_;
  double vov0_;       // blend overdrive (V)
  double i_at_vov0_;  // current per w unit at vov0 (A)
  double cin_, cpar_, cmid_;
};

}  // namespace minergy::tech
