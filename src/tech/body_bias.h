// Static threshold adjustment through substrate/well biasing (Figure 1).
//
// The paper proposes manufacturing ultra-low-power parts on an unmodified
// CMOS process by *eliminating the threshold-adjust implant* (leaving
// low-Vt "natural" devices) and then programming the desired thresholds
// with a static reverse bias on the p-substrate (NMOS) and the n-well
// (PMOS):
//
//   Vt(Vsb) = Vt0 + gamma * (sqrt(2*phi_F + Vsb) - sqrt(2*phi_F))
//
// This module inverts that body-effect relation: given the Vts the joint
// optimizer selected, it computes V_SUBSTRATE and V_NWELL, checks they stay
// within the junction's safe reverse range, and reports the bias
// sensitivity dVt/dVsb (how tightly the generated bias must be regulated).
#pragma once

#include "tech/technology.h"

namespace minergy::tech {

struct BodyBiasParams {
  double gamma = 0.45;      // body-effect coefficient (sqrt(V))
  double phi_f = 0.35;      // Fermi potential (V); 2*phi_F enters the model
  double vt0_nmos = 0.08;   // natural (implant-free) NMOS threshold (V)
  double vt0_pmos = 0.10;   // natural |Vt| of the PMOS (V)
  double max_reverse_bias = 5.0;   // junction-safe reverse bias (V)
  double max_forward_bias = 0.40;  // below the diode turn-on (V)

  void validate() const;  // throws std::invalid_argument
};

struct BiasSolution {
  double vsb = 0.0;          // source-to-body reverse bias (V; < 0 = forward)
  double sensitivity = 0.0;  // dVt/dVsb at the operating point (V/V)
  bool in_safe_range = false;
};

class BodyBiasCalculator {
 public:
  explicit BodyBiasCalculator(const BodyBiasParams& params);

  const BodyBiasParams& params() const { return params_; }

  // Threshold at a given source-to-body bias (vsb >= -max_forward_bias).
  double vt_at_bias(double vt0, double vsb) const;

  // Source-body bias required to move a device from vt0 to target_vt.
  // Forward bias (negative vsb) is used for targets *below* vt0, clamped to
  // the diode limit.
  BiasSolution bias_for_target(double vt0, double target_vt) const;

  // Rail voltages per Figure 1 for an NMOS/PMOS pair:
  //   V_SUBSTRATE = -vsb_n          (p-substrate pulled below ground)
  //   V_NWELL     = vdd + vsb_p     (n-well pulled above the supply)
  BiasSolution nmos_substrate_bias(double target_vtn) const;
  BiasSolution pmos_well_bias(double target_vtp) const;
  double substrate_rail(double target_vtn) const;           // V_SUBSTRATE
  double nwell_rail(double target_vtp, double vdd) const;   // V_NWELL

 private:
  BodyBiasParams params_;
};

}  // namespace minergy::tech
