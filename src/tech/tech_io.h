// Plain-text technology files.
//
// Format: one `key = value` per line, `#` comments, keys matching the
// Technology field names (SI units). Unknown keys are an error (they are
// invariably typos); missing keys keep the preset/default value. An
// optional `base = <preset-name>` line (first) selects the starting preset.
//
//   # my 0.35um low-power flavor
//   base = generic350
//   leakage_scale = 12
//   vts_max = 0.6
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tech/technology.h"

namespace minergy::tech {

// Names of every numeric Technology field the text format accepts, in
// parser order. Shared by the serializer and the fault-injection harness.
const std::vector<std::string>& technology_field_names();

// Mutable reference to a field by name; returns nullptr for unknown names.
double* technology_field(Technology& tech, const std::string& name);

Technology parse_technology(std::istream& in,
                            const std::string& name = "tech");
Technology parse_technology_string(const std::string& text,
                                   const std::string& name = "tech");
Technology parse_technology_file(const std::string& path);

// Serialize every field as `key = value` lines (round-trips through the
// parser).
std::string to_tech_string(const Technology& tech);
void write_technology_file(const Technology& tech, const std::string& path);

}  // namespace minergy::tech
