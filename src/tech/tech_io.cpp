#include "tech/tech_io.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace minergy::tech {
namespace {

// Field registry: name -> accessor. One table serves both directions.
struct Field {
  std::function<double&(Technology&)> ref;
};

const std::map<std::string, Field>& fields() {
  static const std::map<std::string, Field> kFields = {
#define MINERGY_TECH_FIELD(name) \
  {#name, {[](Technology& t) -> double& { return t.name; }}}
      MINERGY_TECH_FIELD(feature_size),
      MINERGY_TECH_FIELD(channel_length),
      MINERGY_TECH_FIELD(alpha),
      MINERGY_TECH_FIELD(pc),
      MINERGY_TECH_FIELD(n_sub),
      MINERGY_TECH_FIELD(temperature),
      MINERGY_TECH_FIELD(junction_leak_per_w),
      MINERGY_TECH_FIELD(blend_overdrive_factor),
      MINERGY_TECH_FIELD(leakage_scale),
      MINERGY_TECH_FIELD(beta_ratio),
      MINERGY_TECH_FIELD(cgate_per_w),
      MINERGY_TECH_FIELD(cpar_per_w),
      MINERGY_TECH_FIELD(cmid_per_w),
      MINERGY_TECH_FIELD(wire_cap_per_len),
      MINERGY_TECH_FIELD(wire_res_per_len),
      MINERGY_TECH_FIELD(flight_velocity),
      MINERGY_TECH_FIELD(gate_pitch),
      MINERGY_TECH_FIELD(rent_exponent),
      MINERGY_TECH_FIELD(rent_k),
      MINERGY_TECH_FIELD(vdd_min),
      MINERGY_TECH_FIELD(vdd_max),
      MINERGY_TECH_FIELD(vts_min),
      MINERGY_TECH_FIELD(vts_max),
      MINERGY_TECH_FIELD(w_min),
      MINERGY_TECH_FIELD(w_max),
      MINERGY_TECH_FIELD(clock_skew_b),
      MINERGY_TECH_FIELD(po_load_w),
      MINERGY_TECH_FIELD(nominal_vdd),
      MINERGY_TECH_FIELD(nominal_vts),
#undef MINERGY_TECH_FIELD
  };
  return kFields;
}

}  // namespace

const std::vector<std::string>& technology_field_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    names.reserve(fields().size());
    for (const auto& [key, field] : fields()) names.push_back(key);
    return names;
  }();
  return kNames;
}

double* technology_field(Technology& tech, const std::string& name) {
  const auto it = fields().find(name);
  if (it == fields().end()) return nullptr;
  return &it->second.ref(tech);
}

Technology parse_technology(std::istream& in, const std::string& name) {
  Technology tech;  // default preset unless `base =` overrides
  tech.name = name;
  std::string line;
  int line_no = 0;
  bool first_directive = true;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto body = util::trim(line);
    if (body.empty()) continue;

    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      throw util::ParseError("expected 'key = value'", name, line_no);
    }
    const std::string key(util::trim(body.substr(0, eq)));
    const std::string value(util::trim(body.substr(eq + 1)));
    if (key == "base") {
      if (!first_directive) {
        throw util::ParseError("'base' must be the first directive", name,
                               line_no);
      }
      try {
        tech = Technology::by_name(value);
        tech.name = name;
      } catch (const std::invalid_argument& e) {
        throw util::ParseError(e.what(), name, line_no);
      }
      first_directive = false;
      continue;
    }
    first_directive = false;
    if (key == "name") {
      tech.name = value;
      continue;
    }
    const auto it = fields().find(key);
    if (it == fields().end()) {
      throw util::ParseError("unknown technology parameter '" + key + "'",
                             name, line_no);
    }
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    // strtod must consume the whole (trimmed) value.
    if (end == value.c_str() || !util::trim(std::string_view(end)).empty()) {
      throw util::ParseError("bad numeric value '" + value + "'", name,
                             line_no);
    }
    it->second.ref(tech) = parsed;
  }
  tech.validate();
  return tech;
}

Technology parse_technology_string(const std::string& text,
                                   const std::string& name) {
  std::istringstream in(text);
  return parse_technology(in, name);
}

Technology parse_technology_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::ParseError("cannot open file", path, 0);
  return parse_technology(in,
                          std::filesystem::path(path).stem().string());
}

std::string to_tech_string(const Technology& tech) {
  std::ostringstream os;
  os << "# minergy technology description\n";
  os << "name = " << tech.name << "\n";
  os.precision(12);
  Technology copy = tech;
  for (const auto& [key, field] : fields()) {
    os << key << " = " << field.ref(copy) << "\n";
  }
  return os.str();
}

void write_technology_file(const Technology& tech, const std::string& path) {
  std::ofstream out(path);
  MINERGY_CHECK_MSG(static_cast<bool>(out), "cannot open " + path);
  out << to_tech_string(tech);
}

}  // namespace minergy::tech
