// Technology exploration: pick the threshold voltage for a new process.
//
// The paper's introduction: "In determining the threshold voltage for a
// process being developed for future applications, one may use the
// algorithms on existing benchmarks with predicted circuit timing
// parameters to find the most desirable threshold voltage."
//
// This example sweeps candidate *fixed* process thresholds over the
// benchmark suite at a target clock and reports the energy each choice
// costs, alongside what the fully threshold-free joint optimum would pick —
// exactly the data a device engineer would use to center a low-power
// process.
//
//   $ ./examples/technology_explorer [--fc=2.5e8] [--activity=0.3]
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_suite/experiment.h"
#include "opt/baseline_optimizer.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 250e6);
  const double act = cli.get("activity", 0.3);

  const std::vector<double> candidate_vts = {0.10, 0.15, 0.20, 0.30,
                                             0.45, 0.70};
  // A representative subset keeps the sweep quick.
  const std::vector<std::string> circuits = {"s27", "s298*", "s510*"};

  std::printf("== Process-centering sweep: fixed Vts candidates at %.0f MHz, "
              "activity %.2f ==\n\n",
              cfg.clock_frequency / 1e6, act);

  std::vector<std::string> headers = {"Circuit"};
  for (double v : candidate_vts) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "E@Vts=%.0fmV", v * 1e3);
    headers.emplace_back(buf);
  }
  headers.emplace_back("joint Vts(mV)");
  util::Table table(headers);

  std::vector<util::RunningStats> per_vts(candidate_vts.size());
  for (const auto& name : circuits) {
    const netlist::Netlist nl = bench_suite::make_circuit(name);
    bool scaled = false;
    const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
    activity::ActivityProfile profile;
    profile.input_density = act;
    const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                     {.clock_frequency = 1.0 / tc});
    table.begin_row().add(name);
    double best_for_norm = -1.0;
    std::vector<double> energies;
    for (double vts : candidate_vts) {
      const opt::OptimizationResult r =
          opt::BaselineOptimizer(eval, cfg.opts, vts).run();
      energies.push_back(r.feasible ? r.energy.total() : -1.0);
      if (r.feasible && (best_for_norm < 0.0 ||
                         r.energy.total() < best_for_norm)) {
        best_for_norm = r.energy.total();
      }
    }
    for (std::size_t i = 0; i < energies.size(); ++i) {
      if (energies[i] < 0.0) {
        table.add("infeasible");
      } else {
        table.add_sci(energies[i]);
        per_vts[i].add(energies[i] / best_for_norm);
      }
    }
    const opt::OptimizationResult joint =
        opt::JointOptimizer(eval, cfg.opts).run();
    table.add(joint.vts_primary * 1e3, 0);
  }
  std::cout << table.to_text();

  std::printf("\nGeometric overhead vs. each circuit's best fixed choice:\n");
  for (std::size_t i = 0; i < candidate_vts.size(); ++i) {
    if (per_vts[i].count() == 0) {
      std::printf("  Vts = %3.0f mV: infeasible on some circuits\n",
                  candidate_vts[i] * 1e3);
    } else {
      std::printf("  Vts = %3.0f mV: %.2fx average energy overhead\n",
                  candidate_vts[i] * 1e3, per_vts[i].mean());
    }
  }
  std::printf("\nA process centered near the joint optimizer's Vts column "
              "minimizes suite energy;\nthe 700 mV legacy choice costs an "
              "order of magnitude.\n");
  return 0;
}
