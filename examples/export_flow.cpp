// Full hand-off flow: optimize a circuit and write every downstream
// artifact — the sized .bench netlist, a transistor-level SPICE deck at the
// chosen operating point (with Figure-1 body-bias rails), and the
// technology description used, so the result can be consumed by external
// tools or re-verified in a circuit simulator.
//
//   $ ./examples/export_flow [--circuit=s298*] [--fc=3e8] [--out=out/]
#include <cstdio>
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "bench_suite/experiment.h"
#include "charlib/charlib.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "spice/spice_export.h"
#include "tech/tech_io.h"
#include "util/cli.h"
#include "util/strings.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string circuit = cli.get("circuit", std::string("s298*"));
  const std::string out_dir = cli.get("out", std::string("export_out"));
  std::filesystem::create_directories(out_dir);

  const netlist::Netlist nl = bench_suite::make_circuit(circuit);
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);
  bool scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);

  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                   {.clock_frequency = 1.0 / tc});
  const opt::OptimizationResult r = opt::JointOptimizer(eval).run();
  if (!r.feasible) {
    std::printf("optimization infeasible\n");
    return 1;
  }
  std::printf("%s optimized: Vdd=%.3f V, Vts=%.0f mV, E=%s/cycle\n",
              circuit.c_str(), r.vdd, r.vts_primary * 1e3,
              util::format_eng(r.energy.total(), "J").c_str());

  const std::string base = out_dir + "/" + nl.name();
  netlist::write_bench_file(nl, base + ".bench");
  tech::write_technology_file(cfg.tech, base + ".tech");
  spice::write_spice_file(nl, cfg.tech, r.state, base + ".sp");

  // A sidecar report with the per-gate widths (the .sp encodes them too,
  // but a flat table is friendlier to scripts).
  std::ofstream widths(base + "_widths.csv");
  widths << "gate,width_units,width_um,vts_mv\n";
  for (netlist::GateId id : nl.combinational()) {
    widths << nl.gate(id).name << ',' << r.state.widths[id] << ','
           << r.state.widths[id] * cfg.tech.feature_size * 1e6 << ','
           << r.state.vts[id] * 1e3 << '\n';
  }

  // A Liberty library characterized at the chosen operating point, with
  // one cell per (gate type, fanin) actually present in the design, at the
  // design's median width.
  {
    std::vector<double> ws;
    for (netlist::GateId id : nl.combinational()) {
      ws.push_back(r.state.widths[id]);
    }
    std::sort(ws.begin(), ws.end());
    const double w_med = std::round(ws[ws.size() / 2]);
    const charlib::Characterizer chr(eval.device(), r.vdd,
                                     r.vts_primary);
    std::set<std::pair<int, int>> kinds;  // (type, fanin)
    for (netlist::GateId id : nl.combinational()) {
      const netlist::Gate& g = nl.gate(id);
      kinds.emplace(static_cast<int>(g.type), g.fanin_count());
    }
    std::vector<charlib::CellData> cells;
    for (const auto& [type, fanin] : kinds) {
      cells.push_back(chr.characterize(
          {static_cast<netlist::GateType>(type), fanin,
           std::max(1.0, w_med), ""}));
    }
    std::ofstream lib(base + ".lib");
    lib << charlib::export_liberty(nl.name() + "_lp", chr, cells);
    std::printf("characterized %zu cells into %s.lib (median width %.0f)\n",
                cells.size(), base.c_str(), w_med);
  }

  std::printf("wrote %s.bench, %s.tech, %s.sp, %s_widths.csv, %s.lib\n",
              base.c_str(), base.c_str(), base.c_str(), base.c_str(),
              base.c_str());
  return 0;
}
