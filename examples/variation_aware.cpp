// Variation-aware low-power sign-off.
//
// Ultra-low thresholds make leakage exponentially sensitive to process
// fluctuations, so a design optimized at the nominal corner may violate
// timing or blow its power budget in silicon. This example optimizes a
// circuit for a range of guaranteed +/-Vts tolerance bands and prints the
// guard-banded operating points — the flow a designer would use to choose
// how much margin to buy (paper, Figure 2a methodology).
//
//   $ ./examples/variation_aware [--circuit=s298*] [--fc=3e8]
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "util/cli.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string circuit = cli.get("circuit", std::string("s298*"));
  const netlist::Netlist nl = bench_suite::make_circuit(circuit);

  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);
  bool scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);

  activity::ActivityProfile profile;
  profile.input_density = 0.3;

  std::printf("== Variation-aware optimization of %s (Tc = %.3f ns) ==\n\n",
              circuit.c_str(), tc * 1e9);
  util::Table table({"Guaranteed +/-Vts", "Vdd(V)", "Vts(mV)",
                     "Worst-case E(J)", "Nominal-corner E(J)",
                     "Guardband cost"});

  // Nominal-corner reference.
  const opt::CircuitEvaluator nominal(nl, cfg.tech, profile,
                                      {.clock_frequency = 1.0 / tc});
  const opt::OptimizationResult r0 = opt::JointOptimizer(nominal).run();
  if (!r0.feasible) {
    std::printf("nominal optimization infeasible\n");
    return 1;
  }

  for (double tol : {0.0, 0.10, 0.20, 0.30}) {
    const opt::CircuitEvaluator corner(
        nl, cfg.tech, profile,
        {.clock_frequency = 1.0 / tc, .vts_tolerance = tol});
    const opt::OptimizationResult r = opt::JointOptimizer(corner).run();
    if (!r.feasible) {
      table.begin_row().add(tol * 100.0, 0).add("infeasible").add("-")
          .add("-").add("-").add("-");
      continue;
    }
    table.begin_row()
        .add(tol * 100.0, 0)
        .add(r.vdd, 3)
        .add(r.vts_primary * 1e3, 0)
        .add_sci(r.energy.total())
        .add_sci(r0.energy.total())
        .add(r.energy.total() / r0.energy.total(), 2);
  }
  std::cout << table.to_text();
  std::printf(
      "\n'Guardband cost' is the worst-case energy of the tolerance-aware\n"
      "design relative to the nominal-corner optimum: the price of being\n"
      "robust to threshold fluctuations. Timing is guaranteed at the slow\n"
      "corner (Vts*(1+tol)) and leakage budgeted at the fast one.\n");
  return 0;
}
