// Multiple threshold voltages: energy vs. technology complexity.
//
// The paper allows n_v distinct thresholds (extra implant masks or tub
// biases, Figure 1). This example optimizes one circuit with n_v = 1, 2, 3
// and prints the chosen threshold groups plus the per-group gate counts, so
// a designer can judge whether the second implant mask pays for itself.
//
//   $ ./examples/multi_vth [--circuit=s510*] [--fc=3e8]
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_suite/experiment.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "util/cli.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string circuit = cli.get("circuit", std::string("s510*"));
  const netlist::Netlist nl = bench_suite::make_circuit(circuit);

  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);
  bool scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
  activity::ActivityProfile profile;
  profile.input_density = 0.4;
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                   {.clock_frequency = 1.0 / tc});

  std::printf("== Threshold-count exploration on %s (Tc = %.3f ns) ==\n\n",
              circuit.c_str(), tc * 1e9);
  util::Table table({"n_v", "Vdd(V)", "Vts groups (mV)", "group sizes",
                     "Static(J)", "Dynamic(J)", "Total(J)"});
  double e1 = 0.0;
  for (int nv = 1; nv <= 3; ++nv) {
    opt::OptimizerOptions opts;
    opts.num_thresholds = nv;
    const opt::OptimizationResult r = opt::JointOptimizer(eval, opts).run();
    if (!r.feasible) continue;
    if (nv == 1) e1 = r.energy.total();

    // Histogram the per-gate thresholds into the distinct groups.
    std::map<long, std::size_t> groups;  // key: Vts in tenths of mV
    for (netlist::GateId id : nl.combinational()) {
      groups[std::lround(r.state.vts[id] * 1e4)]++;
    }
    std::string vts_str, size_str;
    for (const auto& [key, count] : groups) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f", static_cast<double>(key) / 10.0);
      if (!vts_str.empty()) {
        vts_str += " / ";
        size_str += " / ";
      }
      vts_str += buf;
      size_str += std::to_string(count);
    }
    table.begin_row()
        .add(nv)
        .add(r.vdd, 3)
        .add(vts_str)
        .add(size_str)
        .add_sci(r.energy.static_energy)
        .add_sci(r.energy.dynamic_energy)
        .add_sci(r.energy.total());
  }
  std::cout << table.to_text();
  (void)e1;
  std::printf(
      "\nTiming-critical gates keep the low threshold; slack-rich gates are\n"
      "raised to cut leakage. Each extra n_v costs an implant mask or an\n"
      "additional tub bias (paper, Section 2).\n");
  return 0;
}
