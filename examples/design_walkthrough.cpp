// A guided walk through every stage of the optimization flow on one
// circuit, printing the intermediate artifacts a user would inspect when
// debugging a design: activity profile, wire loads, path criticalities,
// delay budgets, sized widths and the final operating point.
//
//   $ ./examples/design_walkthrough [--circuit=s208*] [--fc=3e8] [file.bench]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "timing/path_enum.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const netlist::Netlist nl =
      cli.positional().empty()
          ? bench_suite::make_circuit(
                cli.get("circuit", std::string("s208*")))
          : netlist::parse_bench_file(cli.positional()[0]);

  std::printf("=== 1. Netlist ===\n%s: %s\n\n", nl.name().c_str(),
              netlist::compute_stats(nl).to_string().c_str());

  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);
  bool scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
  std::printf("cycle time: %.3f ns%s\n\n", tc * 1e9,
              scaled ? " (scaled to the baseline's capability)" : "");

  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                   {.clock_frequency = 1.0 / tc});

  std::printf("=== 2. Activity estimation (Najm transition densities) ===\n");
  {
    const auto& act = eval.activity();
    double dmin = 1e9, dmax = 0.0, dsum = 0.0;
    for (netlist::GateId id : nl.combinational()) {
      dmin = std::min(dmin, act.density[id]);
      dmax = std::max(dmax, act.density[id]);
      dsum += act.density[id];
    }
    std::printf("internal-node density: min %.4f, mean %.4f, max %.4f "
                "transitions/cycle\n\n",
                dmin, dsum / static_cast<double>(nl.num_combinational()),
                dmax);
  }

  std::printf("=== 3. Rent's-rule wire loads ===\n");
  {
    const auto& wires = eval.wires();
    double lsum = 0.0, csum = 0.0;
    for (netlist::GateId id : nl.combinational()) {
      lsum += wires.routed_length(id);
      csum += wires.net_cap(id);
    }
    const double n = static_cast<double>(nl.num_combinational());
    std::printf("mean routed net: %s, %s (distribution mean %.1f gate "
                "pitches)\n\n",
                util::format_eng(lsum / n, "m").c_str(),
                util::format_eng(csum / n, "F").c_str(),
                wires.distribution().mean());
  }

  std::printf("=== 4. Most critical paths (fanout-sum criticality) ===\n");
  {
    const timing::PathAnalyzer pa(nl);
    int rank = 1;
    for (const timing::Path& p : pa.top_k(3)) {
      std::printf("  #%d criticality %lld, %zu gates:", rank++,
                  static_cast<long long>(p.criticality), p.gates.size());
      for (std::size_t i = 0; i < std::min<std::size_t>(p.gates.size(), 8);
           ++i) {
        std::printf(" %s", nl.gate(p.gates[i]).name.c_str());
      }
      if (p.gates.size() > 8) std::printf(" ...");
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("=== 5. Procedure-1 delay budgets ===\n");
  {
    const timing::BudgetResult budgets = eval.budgeter().assign(tc);
    double bmin = 1e9, bmax = 0.0;
    for (netlist::GateId id : nl.combinational()) {
      bmin = std::min(bmin, budgets.t_max[id]);
      bmax = std::max(bmax, budgets.t_max[id]);
    }
    std::printf("paths processed: %d, slope adjustments: %d, budgets "
                "%.1f..%.1f ps, longest budget path %.3f ns (cap %.3f)\n\n",
                budgets.rounds, budgets.slope_adjustments, bmin * 1e12,
                bmax * 1e12, budgets.longest_budget_path * 1e9,
                0.95 * tc * 1e9);
  }

  std::printf("=== 6. Joint optimization (Procedure 2) ===\n");
  const opt::OptimizationResult r = opt::JointOptimizer(eval).run();
  if (!r.feasible) {
    std::printf("infeasible!\n");
    return 1;
  }
  {
    double wsum = 0.0, wmax = 0.0;
    for (netlist::GateId id : nl.combinational()) {
      wsum += r.state.widths[id];
      wmax = std::max(wmax, r.state.widths[id]);
    }
    std::printf("Vdd = %.3f V, Vts = %.0f mV, widths mean %.2f / max %.0f, "
                "%d circuit evaluations in %.3f s\n",
                r.vdd, r.vts_primary * 1e3,
                wsum / static_cast<double>(nl.num_combinational()), wmax,
                r.circuit_evaluations, r.runtime_seconds);
    std::printf("energy/cycle: %s static + %s dynamic = %s; critical delay "
                "%.3f ns (budget %.3f ns)\n",
                util::format_eng(r.energy.static_energy, "J").c_str(),
                util::format_eng(r.energy.dynamic_energy, "J").c_str(),
                util::format_eng(r.energy.total(), "J").c_str(),
                r.critical_delay * 1e9, 0.95 * tc * 1e9);
  }
  return 0;
}
