// Quickstart: minimize the energy of a small CMOS netlist at 400 MHz.
//
//   $ ./examples/quickstart [--fc=4e8] [path/to/netlist.bench]
//
// Loads ISCAS-85 c17 by default (or any .bench file you pass), estimates
// activities, runs the conventional baseline (fixed 700 mV threshold) and
// the paper's joint Vdd/Vts/width optimizer, and prints both operating
// points side by side.
#include <cstdio>

#include "bench_suite/iscas.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "opt/baseline_optimizer.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "util/cli.h"
#include "util/strings.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double fc = cli.get("fc", 400e6);

  // 1. A netlist: parsed from .bench, or the embedded c17.
  const netlist::Netlist nl =
      cli.positional().empty()
          ? bench_suite::make_c17()
          : netlist::parse_bench_file(cli.positional()[0]);
  std::printf("circuit %s: %s\n", nl.name().c_str(),
              netlist::compute_stats(nl).to_string().c_str());

  // 2. A technology and an activity profile.
  const tech::Technology tech = tech::Technology::generic350();
  activity::ActivityProfile profile;
  profile.input_probability = 0.5;
  profile.input_density = 0.3;  // 0.3 transitions per cycle at every input

  // 3. The evaluation context: activity estimation, Rent's-rule wire loads,
  //    delay and energy models, all bundled.
  const opt::CircuitEvaluator eval(nl, tech, profile,
                                   {.clock_frequency = fc});
  std::printf("target clock: %s (Tc = %s)\n",
              util::format_eng(fc, "Hz", 0).c_str(),
              util::format_eng(eval.cycle_time(), "s").c_str());

  // 4. Optimize: conventional flow vs. the paper's joint device-circuit
  //    optimization.
  const opt::OptimizationResult base = opt::BaselineOptimizer(eval).run();
  const opt::OptimizationResult joint = opt::JointOptimizer(eval).run();
  if (!base.feasible || !joint.feasible) {
    std::printf("infeasible at this clock frequency; try a lower --fc\n");
    return 1;
  }

  auto show = [](const char* name, const opt::OptimizationResult& r) {
    std::printf(
        "%-22s Vdd=%.3f V  Vts=%.0f mV  E=%s/cycle "
        "(static %s + dynamic %s)  crit=%s\n",
        name, r.vdd, r.vts_primary * 1e3,
        util::format_eng(r.energy.total(), "J").c_str(),
        util::format_eng(r.energy.static_energy, "J").c_str(),
        util::format_eng(r.energy.dynamic_energy, "J").c_str(),
        util::format_eng(r.critical_delay, "s").c_str());
  };
  show("baseline (Vts fixed):", base);
  show("joint optimization:", joint);
  std::printf("energy savings: %.1fx at the same clock frequency\n",
              base.energy.total() / joint.energy.total());
  return 0;
}
