// From optimizer output to silicon: Figure-1 substrate-bias planning.
//
// The paper's manufacturing proposal: skip the threshold-adjust implant
// (leaving ~80-100 mV "natural" devices) and program the optimizer's Vts
// with static reverse bias on the p-substrate and n-well. This example runs
// the joint optimization and prints the resulting bias plan: rail voltages,
// regulation sensitivity, and safety margins.
//
//   $ ./examples/body_bias_planner [--circuit=s298*] [--fc=3e8] [--nv=2]
#include <cstdio>
#include <iostream>
#include <set>

#include "bench_suite/experiment.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "tech/body_bias.h"
#include "util/cli.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string circuit = cli.get("circuit", std::string("s298*"));
  const netlist::Netlist nl = bench_suite::make_circuit(circuit);

  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);
  bool scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                   {.clock_frequency = 1.0 / tc});

  opt::OptimizerOptions opts = cfg.opts;
  opts.num_thresholds = cli.get("nv", 1);
  const opt::OptimizationResult r = opt::JointOptimizer(eval, opts).run();
  if (!r.feasible) {
    std::printf("optimization infeasible\n");
    return 1;
  }

  std::printf("== Body-bias plan for %s ==\n", circuit.c_str());
  std::printf("optimized operating point: Vdd = %.3f V, %zu threshold "
              "group(s)\n\n",
              r.vdd, r.vts_groups.size());

  const tech::BodyBiasCalculator calc{tech::BodyBiasParams{}};
  util::Table table({"Vts target(mV)", "NMOS Vsb(V)", "V_SUBSTRATE(V)",
                     "PMOS Vsb(V)", "V_NWELL(V)", "dVt/dVsb(mV/V)",
                     "realizable"});
  for (double vts : r.vts_groups) {
    const tech::BiasSolution n = calc.nmos_substrate_bias(vts);
    const tech::BiasSolution p = calc.pmos_well_bias(vts);
    table.begin_row()
        .add(vts * 1e3, 0)
        .add(n.vsb, 3)
        .add(calc.substrate_rail(vts), 3)
        .add(p.vsb, 3)
        .add(calc.nwell_rail(vts, r.vdd), 3)
        .add(n.sensitivity * 1e3, 1)
        .add(n.in_safe_range && p.in_safe_range ? "yes" : "NO");
  }
  std::cout << table.to_text();

  // How tightly must the bias generator regulate? A dVts budget of +/-10 mV
  // maps through the sensitivity to a Vsb ripple budget.
  const tech::BiasSolution n = calc.nmos_substrate_bias(r.vts_primary);
  std::printf(
      "\nWith dVt/dVsb = %.1f mV/V at the primary threshold, holding Vts "
      "within +/-10 mV\nneeds the substrate generator regulated to "
      "+/-%.0f mV — a relaxed spec, which is\nwhy the paper's static-bias "
      "scheme is practical on an unmodified process.\n",
      n.sensitivity * 1e3, 10.0 / (n.sensitivity * 1e3) * 1e3);
  return 0;
}
